// bench_t13_serve — Experiment T13.
//
// The pool as a *serving layer*: an open-loop generator streams thousands of
// mixed CASPER/SOR/synthetic jobs at a target arrival rate through the
// serve-mode surface (SubmitOptions deadlines, SchedPolicy::kDeadline,
// bounded admission). The paper's rundown-overlap machinery is what makes
// this viable — a served job's tail is filled by the next arrival — and this
// bench gates that the serving plane built on top of it actually serves:
//
//   1. p99 completion latency at the calibrated rate (0.7x closed-loop
//      capacity) stays within a fixed multiple of the unloaded solo latency;
//   2. goodput under ~2x overload, with admission control bounding the
//      pending set, is no worse than 0.8x of the at-rate goodput — graceful
//      degradation, not collapse;
//   3. EDF (kDeadline) beats kFifo on deadline-miss rate over an adversarial
//      burst submitted loosest-deadline-first;
//   4. the t10 warm-allocation bar holds for the worker plane: the
//      *marginal* heap traffic per extra granule served stays under the bar
//      (per-job setup — construction on the generator thread, one-time
//      program machinery on a worker — is differenced out; see
//      marginal_warm_allocs).
//
// --json emits BENCH_t13.json, including Végh's effective parallelization
// alpha_eff (bench_util::vegh_alpha_eff) computed from the closed-loop
// speedup over a one-worker pool — the serving plane's figure of merit.
// --check runs a reduced correctness sweep (both shard engines, deadlines,
// admission rejections, pre-open and mid-run cancels) and exits 0/1; the
// TSAN CI job runs this mode.
#define PAX_ALLOC_STATS_IMPLEMENT
#include "common/alloc_stats.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "pool/pool_runtime.hpp"

namespace {

using namespace pax;
using Clock = std::chrono::steady_clock;
using std::chrono::nanoseconds;

std::atomic<std::uint64_t> g_sink{0};

void spin(std::uint32_t iters) {
  std::uint64_t acc = 0;
  for (std::uint32_t i = 0; i < iters; ++i)
    acc += (static_cast<std::uint64_t>(i) * 2654435761u) ^ (acc >> 7);
  g_sink.fetch_add(acc, std::memory_order_relaxed);
}

/// Gate the EDF arm's burst behind: every granule parks until released, so
/// the whole burst is queued before the policy picks anything.
std::atomic<bool> g_gate{false};

struct JobSpec {
  const char* kind;
  GranuleId n;            ///< granules per phase
  std::uint32_t phases;   ///< 3 = CASPER-ish, 2 = SOR-ish, 1 = synthetic
  int iters;
  std::uint32_t base_spin;
  std::uint32_t straggler_spin;
  std::uint32_t serial_spin;
};

struct BuiltJob {
  PhaseProgram prog;
  rt::BodyTable bodies;
  std::uint64_t expected_granules = 0;
};

/// Same shape as bench_t7_pool's jobs — identity-chained phases, a straggler
/// granule per phase, a conflicting serial at the loop boundary — but sized
/// for serving: one job is ~100us of body work, so thousands stream through.
#if defined(__GNUC__) && !defined(__clang__)
// GCC 12 false positive: node-vector reallocation moving the ProgramNode
// variant trips -Wmaybe-uninitialized on the moved-from EnableClause vector.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
BuiltJob build_job(const JobSpec& s) {
  BuiltJob b;
  static const char* kNames[3] = {"pa", "pb", "pc"};
  static const char* kRes[3] = {"RA", "RB", "RC"};
  std::vector<PhaseId> ids;
  for (std::uint32_t p = 0; p < s.phases; ++p) {
    auto ph = make_phase(kNames[p], s.n).writes(kRes[p]);
    if (p > 0) ph.reads(kRes[p - 1]);
    ids.push_back(b.prog.define_phase(ph));
  }
  b.prog.serial("init", [](ProgramEnv& env) { env.set("i", 0); }, 0, false);
  std::uint32_t top = 0;
  for (std::uint32_t p = 0; p < s.phases; ++p) {
    std::vector<EnableClause> clauses;
    if (p + 1 < s.phases)
      clauses.push_back(EnableClause{kNames[p + 1], MappingKind::kIdentity, {}});
    const std::uint32_t node = b.prog.dispatch(ids[p], std::move(clauses));
    if (p == 0) top = node;
  }
  const std::uint32_t serial_spin = s.serial_spin;
  b.prog.serial("tick",
                [serial_spin](ProgramEnv& env) {
                  spin(serial_spin);
                  env.add("i", 1);
                },
                /*sim_duration=*/0, /*conflicts=*/true);
  const int iters = s.iters;
  b.prog.branch("loop",
                [iters](const ProgramEnv& env) {
                  return env.get("i") < iters ? std::size_t{0} : std::size_t{1};
                },
                {top, static_cast<std::uint32_t>(b.prog.size() + 1)}, true);
  b.prog.halt();

  const GranuleId n = s.n;
  const std::uint32_t base = s.base_spin;
  const std::uint32_t strag = s.straggler_spin;
  for (PhaseId id : ids)
    b.bodies.set(id, [n, base, strag](GranuleRange r, WorkerId) {
      for (GranuleId g = r.lo; g < r.hi; ++g) {
        if (!g_gate.load(std::memory_order_acquire))
          while (!g_gate.load(std::memory_order_acquire))
            std::this_thread::yield();
        spin(g == n - 1 ? strag : base);
      }
    });
  b.expected_granules = static_cast<std::uint64_t>(s.phases) * s.n *
                        static_cast<std::uint64_t>(s.iters);
  return b;
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

constexpr std::uint32_t kWorkers = 4;

/// The mixed serving workload: one CASPER-ish pipeline, one SOR-ish sweep,
/// one flat synthetic scan; the generator round-robins across them.
std::vector<BuiltJob> build_workload() {
  const std::vector<JobSpec> specs = {
      {"casper", 8, 3, 1, 1200, 3600, 600},
      {"sor", 8, 2, 2, 1600, 4000, 500},
      {"synth", 16, 1, 1, 1000, 1000, 0},
  };
  std::vector<BuiltJob> jobs;
  jobs.reserve(specs.size());
  for (const JobSpec& s : specs) jobs.push_back(build_job(s));
  return jobs;
}

pool::PoolConfig serve_config(std::uint32_t workers, pool::SchedPolicy policy,
                              std::uint32_t max_pending) {
  pool::PoolConfig pc;
  pc.workers = workers;
  pc.batch = 4;
  pc.policy = policy;
  pc.max_pending = max_pending;
  return pc;
}

ExecConfig exec_config() {
  ExecConfig cfg;
  cfg.grain = 1;
  cfg.early_serial = true;
  return cfg;
}

double secs(nanoseconds ns) { return static_cast<double>(ns.count()) / 1e9; }
double ms(nanoseconds ns) { return static_cast<double>(ns.count()) / 1e6; }

/// Closed-loop capacity: submit `n` jobs as fast as the generator can and
/// measure completion throughput (jobs/s). Includes job construction on the
/// generator thread — that is a real serving cost.
double closed_loop_rate(const std::vector<BuiltJob>& jobs, std::uint32_t workers,
                        std::size_t n, bool* granules_ok) {
  pool::PoolRuntime pool(
      serve_config(workers, pool::SchedPolicy::kDeadline, 0));
  std::vector<pool::JobHandle> handles;
  handles.reserve(n);
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    const BuiltJob& j = jobs[i % jobs.size()];
    handles.push_back(pool.submit(j.prog, j.bodies, exec_config()));
  }
  pool.drain();
  const double elapsed = secs(Clock::now() - t0);
  for (std::size_t i = 0; i < n; ++i)
    if (handles[i].stats().granules != jobs[i % jobs.size()].expected_granules)
      *granules_ok = false;
  pool.shutdown();
  return static_cast<double>(n) / elapsed;
}

struct OpenLoopResult {
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  double elapsed_s = 0.0;        ///< first submit -> drain return
  double goodput = 0.0;          ///< completed / elapsed_s
  nanoseconds p50{0}, p99{0};    ///< sojourn (submit -> terminal), completed
  double warm_allocs_per_granule = 0.0;  ///< worker-plane heap traffic
  std::uint64_t granules = 0;
  bool granules_ok = true;
};

/// Open-loop arm: Poisson arrivals at `lambda` jobs/s from one generator
/// thread (this one). Absolute arrival schedule — falling behind means
/// submitting immediately, never silently thinning the offered load.
OpenLoopResult open_loop(const std::vector<BuiltJob>& jobs, double lambda,
                         std::size_t n, std::uint32_t max_pending,
                         std::uint64_t seed) {
  OpenLoopResult r;
  pool::PoolRuntime pool(
      serve_config(kWorkers, pool::SchedPolicy::kDeadline, max_pending));

  // Warm the plane before snapshotting heap counters: worker startup and
  // first-touch reserves (local queues, done buffers, ring spill) are
  // one-time costs, not steady-state serving traffic.
  {
    std::vector<pool::JobHandle> warm;
    for (std::size_t i = 0; i < 3 * jobs.size(); ++i)
      warm.push_back(
          pool.submit(jobs[i % jobs.size()].prog, jobs[i % jobs.size()].bodies,
                      exec_config()));
    pool.drain();
  }
  const AllocTotals proc0 = alloc_stats::totals();
  const AllocTotals gen0 = alloc_stats::thread_totals();

  std::mt19937_64 rng(seed);
  std::exponential_distribution<double> interarrival(lambda);
  std::vector<pool::JobHandle> handles;
  handles.reserve(n);
  const auto t0 = Clock::now();
  auto next = t0;
  for (std::size_t i = 0; i < n; ++i) {
    next += nanoseconds(static_cast<std::int64_t>(interarrival(rng) * 1e9));
    if (next > Clock::now()) std::this_thread::sleep_until(next);
    const BuiltJob& j = jobs[i % jobs.size()];
    handles.push_back(pool.submit(j.prog, j.bodies, exec_config()));
  }
  pool.drain();
  r.elapsed_s = secs(Clock::now() - t0);

  std::vector<nanoseconds> spans;
  spans.reserve(n);
  std::uint64_t warm_granules = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const pool::JobStats js = handles[i].stats();
    switch (handles[i].state()) {
      case pool::JobState::kComplete:
        ++r.completed;
        warm_granules += js.granules;
        if (js.granules != jobs[i % jobs.size()].expected_granules)
          r.granules_ok = false;
        spans.push_back(js.span);
        break;
      case pool::JobState::kRejected:
        ++r.rejected;
        if (js.granules != 0) r.granules_ok = false;
        break;
      default:
        r.granules_ok = false;  // nothing is cancelled in this arm
        break;
    }
  }
  pool.shutdown();
  const AllocTotals proc1 = alloc_stats::totals();
  const AllocTotals gen1 = alloc_stats::thread_totals();
  // Worker-plane allocations: everything the process allocated during the
  // arm minus the generator thread's share (job construction, handle
  // vector growth, sleep bookkeeping all happen here on the submit side).
  // Gross: includes each job's one-time program machinery (start, dispatch
  // advance, serial env writes), which runs lazily on workers — the gated
  // warm-handout number comes from marginal_warm_allocs() instead.
  const std::uint64_t worker_allocs =
      (proc1.allocs - proc0.allocs) - (gen1.allocs - gen0.allocs);
  r.granules = warm_granules;
  if (warm_granules > 0)
    r.warm_allocs_per_granule =
        static_cast<double>(worker_allocs) / static_cast<double>(warm_granules);
  r.goodput = static_cast<double>(r.completed) / r.elapsed_s;
  std::sort(spans.begin(), spans.end());
  if (!spans.empty()) {
    r.p50 = spans[spans.size() / 2];
    r.p99 = spans[static_cast<std::size_t>(
        static_cast<double>(spans.size() - 1) * 0.99)];
  }
  return r;
}

/// The t10 warm-allocation bar, serve-mode edition. A served job pays a
/// one-time program-machinery cost on the worker plane (~30-45 allocs:
/// start(), dispatch advance, serial env writes, buffer growth) that the
/// single-program t10/t12 benches pay before their measured window — so the
/// gross worker-plane allocs/granule of a job stream cannot be compared to
/// the t10 bar directly. The *marginal* cost per granule can: run the same
/// job count at two granule counts and difference out the per-job setup.
/// Both granule counts sit past the per-job buffer-growth saturation point
/// (worker-side allocs/job are flat above ~64 granules), so the difference
/// isolates the warm handout path (carve -> ring -> local queue -> retire),
/// which an intact t10 property makes allocation-free.
double marginal_warm_allocs(std::size_t n_jobs, GranuleId n_small,
                            GranuleId n_large) {
  auto worker_allocs = [&](GranuleId n, std::uint64_t* granules) {
    const BuiltJob j = build_job({"alloc", n, 1, 1, 400, 400, 0});
    pool::PoolRuntime pool(
        serve_config(kWorkers, pool::SchedPolicy::kDeadline, 0));
    {
      std::vector<pool::JobHandle> warm;
      for (int i = 0; i < 8; ++i)
        warm.push_back(pool.submit(j.prog, j.bodies, exec_config()));
      pool.drain();
    }
    const AllocTotals proc0 = alloc_stats::totals();
    const AllocTotals gen0 = alloc_stats::thread_totals();
    std::vector<pool::JobHandle> handles;
    handles.reserve(n_jobs);
    for (std::size_t i = 0; i < n_jobs; ++i)
      handles.push_back(pool.submit(j.prog, j.bodies, exec_config()));
    pool.drain();
    pool.shutdown();
    const AllocTotals proc1 = alloc_stats::totals();
    const AllocTotals gen1 = alloc_stats::thread_totals();
    *granules = static_cast<std::uint64_t>(n) * n_jobs;
    return (proc1.allocs - proc0.allocs) - (gen1.allocs - gen0.allocs);
  };
  std::uint64_t g_small = 0, g_large = 0;
  const std::uint64_t a_small = worker_allocs(n_small, &g_small);
  const std::uint64_t a_large = worker_allocs(n_large, &g_large);
  if (a_large <= a_small) return 0.0;  // per-job noise outweighed the delta
  return static_cast<double>(a_large - a_small) /
         static_cast<double>(g_large - g_small);
}

struct BurstResult {
  std::uint64_t missed = 0;
  std::uint64_t met = 0;
  [[nodiscard]] double miss_rate() const {
    const std::uint64_t total = missed + met;
    return total == 0 ? 0.0 : static_cast<double>(missed) /
                                  static_cast<double>(total);
  }
};

/// The adversarial deadline burst: K jobs whose deadlines increase with
/// rank, submitted loosest-first behind a gate that parks every worker until
/// the whole burst is queued. kFifo serves them in submission order and runs
/// the tight-deadline jobs last; kDeadline reorders. Deadlines carry a
/// cushion for the gated window (0.5 * T_all) plus a 0.8 * fair-share slope:
/// EDF completes rank r near (r+1)/K * T_all and meets nearly all of them,
/// FIFO completes rank r near (K-r)/K * T_all and misses the tight quarter.
BurstResult deadline_burst(const std::vector<BuiltJob>& jobs,
                           pool::SchedPolicy policy, double rate_cal,
                           std::size_t k) {
  const double t_all = static_cast<double>(k) / rate_cal;  // estimated, secs
  pool::PoolRuntime pool(serve_config(kWorkers, policy, 0));

  // Park all workers: one gated job with enough granules for everyone.
  g_gate.store(false, std::memory_order_release);
  const BuiltJob blocker = build_job({"gate", 4 * kWorkers, 1, 1, 1, 1, 0});
  pool::JobHandle gate_handle =
      pool.submit(blocker.prog, blocker.bodies, exec_config());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));

  std::vector<pool::JobHandle> handles;
  handles.reserve(k);
  for (std::size_t rank_back = 0; rank_back < k; ++rank_back) {
    const std::size_t rank = k - 1 - rank_back;  // loosest deadline first
    pool::PoolRuntime::SubmitOptions opts;
    opts.deadline = nanoseconds(static_cast<std::int64_t>(
        (0.5 * t_all + 0.8 * t_all * static_cast<double>(rank + 1) /
                           static_cast<double>(k)) *
        1e9));
    const BuiltJob& j = jobs[rank % jobs.size()];
    handles.push_back(pool.submit(j.prog, j.bodies, exec_config(), opts));
  }
  g_gate.store(true, std::memory_order_release);
  pool.drain();
  pool.shutdown();
  (void)gate_handle;
  const pool::PoolStats ps = pool.stats();
  return {ps.jobs_deadline_missed, ps.jobs_deadline_met};
}

// --- --check: reduced correctness sweep for the TSAN CI job ----------------

bool check_engine(const std::vector<BuiltJob>& jobs, bool lockfree) {
  bool ok = true;
  auto fail = [&](const char* what) {
    std::fprintf(stderr, "check(%s): %s\n", lockfree ? "lockfree" : "mutex",
                 what);
    ok = false;
  };
  pool::PoolConfig pc =
      serve_config(3, pool::SchedPolicy::kDeadline, /*max_pending=*/6);
  pc.lockfree = lockfree;
  pool::PoolRuntime pool(pc);
  constexpr std::size_t kN = 48;
  std::vector<pool::JobHandle> handles;
  std::vector<std::uint64_t> expected;
  handles.reserve(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const BuiltJob& j = jobs[i % jobs.size()];
    pool::PoolRuntime::SubmitOptions opts;
    if (i % 3 == 1) opts.deadline = nanoseconds(1);  // guaranteed miss
    if (i % 3 == 2) opts.deadline = std::chrono::milliseconds(250);
    handles.push_back(pool.submit(j.prog, j.bodies, exec_config(), opts));
    expected.push_back(j.expected_granules);
    if (i % 5 == 0) handles.back().cancel();  // pre-open or mid-run
    if (i % 7 == 3) {
      handles.back().wait_for(std::chrono::microseconds(50));
      handles.back().cancel();  // mid-run (or post-terminal no-op)
    }
  }
  pool.drain();
  std::uint64_t completed = 0, cancelled = 0, rejected = 0, granules = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    if (!handles[i].done()) fail("handle not terminal after drain");
    const pool::JobStats js = handles[i].stats();
    granules += js.granules;
    switch (handles[i].state()) {
      case pool::JobState::kComplete:
        ++completed;
        if (js.granules != expected[i]) fail("complete with granule drift");
        break;
      case pool::JobState::kCancelled:
        ++cancelled;
        if (js.granules > expected[i]) fail("cancelled ran extra granules");
        if (js.deadline_missed) fail("cancelled job counted as missed");
        break;
      case pool::JobState::kRejected:
        ++rejected;
        if (js.granules != 0) fail("rejected job executed granules");
        if (js.has_deadline && !js.deadline_missed)
          fail("rejected deadline job not counted missed");
        break;
      default:
        fail("non-terminal state after drain");
        break;
    }
  }
  pool.shutdown();
  const pool::PoolStats ps = pool.stats();
  if (completed + cancelled + rejected != kN) fail("terminal states drifted");
  if (ps.jobs_submitted != kN) fail("jobs_submitted drift");
  if (ps.jobs_completed != completed) fail("jobs_completed drift");
  if (ps.jobs_cancelled != cancelled) fail("jobs_cancelled drift");
  if (ps.jobs_rejected != rejected) fail("jobs_rejected drift");
  if (ps.granules_executed != granules) fail("pool/job granule sum mismatch");
  return ok;
}

bool check_mode() {
  g_gate.store(true, std::memory_order_release);
  const std::vector<BuiltJob> jobs = build_workload();
  bool ok = true;
  for (int round = 0; round < 4; ++round)
    ok = check_engine(jobs, /*lockfree=*/round % 2 == 0) && ok;
  std::printf("t13 --check: %s\n", ok ? "PASS" : "FAIL");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pax;
  using namespace pax::bench;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--check") == 0) return check_mode() ? 0 : 1;

  JsonReport json = JsonReport::from_args(argc, argv);
  print_banner("T13 — the pool as a serving layer",
               "rundown overlap across jobs is what lets an open-loop stream "
               "of programs be *served* — deadlines scheduled, overload "
               "admission-bounded, tails filled by the next arrival");

  g_gate.store(true, std::memory_order_release);  // gate only used by arm 3
  const std::vector<BuiltJob> jobs = build_workload();

  // Gate thresholds.
  constexpr double kLoadFactor = 0.7;      // at-rate lambda = 0.7 * capacity
  constexpr double kOverloadFactor = 2.0;  // overload lambda = 2 * at-rate
  // p99 <= 40x unloaded solo median, with an absolute floor covering OS
  // timeslice noise on small CI hosts (5 threads on 1-2 cores): a serving
  // collapse — lost wakeups, unbounded queueing — shows up as p99 in the
  // hundreds of milliseconds, far past either bound.
  constexpr double kP99Budget = 40.0;
  constexpr std::chrono::milliseconds kP99Floor{25};
  constexpr double kGoodputFloor = 0.8;    // overload goodput >= 0.8x at-rate
  constexpr std::size_t kOpenLoopJobs = 2000;
  constexpr std::size_t kBurstJobs = 96;
  constexpr std::uint32_t kOverloadPending = 32;

  struct Measurement {
    double rate_cal = 0.0, rate_1w = 0.0, speedup = 0.0, alpha_eff = 0.0;
    nanoseconds solo_p50{0};
    OpenLoopResult at_rate, overload;
    BurstResult fifo, edf;
    double marginal_allocs = 0.0;
    bool granules_ok = true;
    bool pass_p99 = false, pass_goodput = false, pass_edf = false,
         pass_alloc = false;
    nanoseconds p99_budget{0};
  };
  auto measure = [&](std::uint64_t seed) {
    Measurement m;
    // Arm 0: unloaded solo latency (sequential submits on an idle pool).
    {
      pool::PoolRuntime pool(
          serve_config(kWorkers, pool::SchedPolicy::kDeadline, 0));
      std::vector<nanoseconds> spans;
      for (std::size_t i = 0; i < 48; ++i) {
        const BuiltJob& j = jobs[i % jobs.size()];
        pool::JobHandle h = pool.submit(j.prog, j.bodies, exec_config());
        h.wait();
        spans.push_back(h.stats().span);
      }
      pool.shutdown();
      std::sort(spans.begin(), spans.end());
      m.solo_p50 = spans[spans.size() / 2];
    }
    // Arm 1: closed-loop capacity, full pool and one worker (Végh's S).
    m.rate_cal = closed_loop_rate(jobs, kWorkers, 384, &m.granules_ok);
    m.rate_1w = closed_loop_rate(jobs, 1, 128, &m.granules_ok);
    m.speedup = m.rate_cal / m.rate_1w;
    m.alpha_eff = vegh_alpha_eff(m.speedup, kWorkers);
    // Arm 2: open loop at the calibrated rate, then under 2x overload with
    // a bounded pending set.
    const double lambda = kLoadFactor * m.rate_cal;
    m.at_rate = open_loop(jobs, lambda, kOpenLoopJobs, 0, seed);
    m.overload = open_loop(jobs, kOverloadFactor * lambda, kOpenLoopJobs,
                           kOverloadPending, seed + 1);
    m.granules_ok = m.granules_ok && m.at_rate.granules_ok &&
                    m.overload.granules_ok && m.at_rate.rejected == 0;
    // Arm 3: the adversarial deadline burst under both policies.
    m.fifo = deadline_burst(jobs, pool::SchedPolicy::kFifo, m.rate_cal,
                            kBurstJobs);
    m.edf = deadline_burst(jobs, pool::SchedPolicy::kDeadline, m.rate_cal,
                           kBurstJobs);
    // Arm 4: marginal warm-path allocations per granule (the t10 bar).
    m.marginal_allocs = marginal_warm_allocs(8, 512, 4096);

    m.p99_budget = std::max(
        nanoseconds(static_cast<std::int64_t>(
            kP99Budget * static_cast<double>(m.solo_p50.count()))),
        nanoseconds(kP99Floor));
    m.pass_p99 = m.at_rate.p99 <= m.p99_budget;
    m.pass_goodput = m.overload.goodput >= kGoodputFloor * m.at_rate.goodput;
    m.pass_edf = m.edf.miss_rate() < m.fifo.miss_rate();
    m.pass_alloc = m.marginal_allocs * kT10RequiredReduction <=
                   kT10PreReworkAllocsPerGranule;
    return m;
  };

  // Latency/goodput/miss-rate gates on a small shared CI host are noisy;
  // retry like the other benches. Granule drift fails immediately — that is
  // correctness, not noise.
  constexpr int kMaxAttempts = 3;
  Measurement m = measure(0x7135E27EULL);
  for (int attempt = 1; attempt < kMaxAttempts && m.granules_ok &&
                        !(m.pass_p99 && m.pass_goodput && m.pass_edf &&
                          m.pass_alloc);
       ++attempt) {
    std::printf(
        "attempt %d: p99 %s goodput %s edf %s alloc %s; retrying (host noise "
        "tolerance)\n",
        attempt, m.pass_p99 ? "ok" : "FAIL", m.pass_goodput ? "ok" : "FAIL",
        m.pass_edf ? "ok" : "FAIL", m.pass_alloc ? "ok" : "FAIL");
    m = measure(0x7135E27EULL + static_cast<std::uint64_t>(attempt) * 977);
  }

  Table cap("T13 — calibrated capacity (closed loop)");
  cap.header({"pool", "rate jobs/s", "speedup", "alpha_eff (Vegh)"});
  cap.row({"1 worker", fixed(m.rate_1w, 0), "1.00", "-"});
  cap.row({std::to_string(kWorkers) + " workers", fixed(m.rate_cal, 0),
           fixed(m.speedup, 2), fixed(m.alpha_eff, 3)});
  cap.print(std::cout);

  Table t("T13 — open-loop serving");
  t.header({"arm", "lambda jobs/s", "completed", "rejected", "goodput",
            "p50 ms", "p99 ms"});
  const double lambda = kLoadFactor * m.rate_cal;
  t.row({"at rate", fixed(lambda, 0), Table::count(m.at_rate.completed),
         Table::count(m.at_rate.rejected), fixed(m.at_rate.goodput, 0),
         fixed(ms(m.at_rate.p50), 3), fixed(ms(m.at_rate.p99), 3)});
  t.row({"2x overload", fixed(kOverloadFactor * lambda, 0),
         Table::count(m.overload.completed), Table::count(m.overload.rejected),
         fixed(m.overload.goodput, 0), fixed(ms(m.overload.p50), 3),
         fixed(ms(m.overload.p99), 3)});
  t.print(std::cout);

  Table d("T13 — adversarial deadline burst (loosest submitted first)");
  d.header({"policy", "met", "missed", "miss rate"});
  d.row({"kFifo", Table::count(m.fifo.met), Table::count(m.fifo.missed),
         Table::pct(m.fifo.miss_rate(), 1)});
  d.row({"kDeadline (EDF)", Table::count(m.edf.met), Table::count(m.edf.missed),
         Table::pct(m.edf.miss_rate(), 1)});
  d.print(std::cout);

  const std::string config = "workers=" + std::to_string(kWorkers) +
                             " jobs=" + std::to_string(kOpenLoopJobs);
  json.set_meta("workers", kWorkers);
  json.set_meta("open_loop_jobs", kOpenLoopJobs);
  json.add("t13_serve", "rate_calibrated_jobs_per_s", m.rate_cal, config);
  json.add("t13_serve", "speedup_vs_1worker", m.speedup, config);
  json.add("t13_serve", "vegh_alpha_eff", m.alpha_eff, config);
  json.add("t13_serve", "p50_latency_ms_at_rate", ms(m.at_rate.p50), config);
  json.add("t13_serve", "p99_latency_ms_at_rate", ms(m.at_rate.p99), config);
  json.add("t13_serve", "goodput_at_rate_jobs_per_s", m.at_rate.goodput,
           config);
  json.add("t13_serve", "goodput_overload_jobs_per_s", m.overload.goodput,
           config);
  json.add("t13_serve", "overload_rejected",
           static_cast<double>(m.overload.rejected), config);
  json.add("t13_serve", "fifo_miss_rate", m.fifo.miss_rate(), config);
  json.add("t13_serve", "edf_miss_rate", m.edf.miss_rate(), config);
  json.add("t13_serve", "worker_allocs_per_granule_gross",
           m.at_rate.warm_allocs_per_granule, config);
  json.add("t13_serve", "warm_allocs_per_granule_marginal", m.marginal_allocs,
           config);

  const bool pass = m.granules_ok && m.pass_p99 && m.pass_goodput &&
                    m.pass_edf && m.pass_alloc;
  std::printf(
      "\nserving is rundown overlap at stream scope: each job's tail is\n"
      "filled by the next arrival's granules, EDF spends the overlap where\n"
      "deadlines are tight, and bounded admission converts overload into\n"
      "rejections instead of unbounded queueing delay.\n\n");
  std::printf(
      "acceptance: p99 %.2fms <= %.2fms %s | overload goodput %.0f >= "
      "0.8x %.0f %s | EDF miss %.1f%% < FIFO %.1f%% %s | marginal warm "
      "allocs/granule %.4f <= %.4f %s | granules %s: %s\n",
      ms(m.at_rate.p99), ms(m.p99_budget), m.pass_p99 ? "ok" : "FAIL",
      m.overload.goodput, m.at_rate.goodput, m.pass_goodput ? "ok" : "FAIL",
      100.0 * m.edf.miss_rate(), 100.0 * m.fifo.miss_rate(),
      m.pass_edf ? "ok" : "FAIL", m.marginal_allocs,
      kT10PreReworkAllocsPerGranule / kT10RequiredReduction,
      m.pass_alloc ? "ok" : "FAIL", m.granules_ok ? "yes" : "NO",
      pass ? "PASS" : "FAIL");
  json.flush();
  return pass ? 0 : 1;
}
