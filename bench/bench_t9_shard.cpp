// bench_t9_shard — Experiment T9.
//
// PR 3 decentralized dispatch; this bench gates the layer below it: the
// *sharded executive* (DESIGN.md §9). Every refill used to funnel through
// one executive mutex per program — the management serialization the paper's
// rundown analysis warns about, re-centralized. The sharded front-end
// partitions the granule handout across independently-locked shard buffers
// (home shard, sibling probe, control sweep as fallback; batched retire with
// cross-shard enablements coalesced and flushed once), so two workers
// refilling different shards never contend and the control mutex is entered
// a fraction as often, for sections amortized over whole sweeps.
//
// Workload: the T8 two-phase identity program with ramped granule cost, at
// 8+ workers. Baseline is shards = 1 — the layer short-circuits to the PR 3
// single-mutex protocol on identical machinery — versus the kAutoShards
// geometry (2x workers).
//
// Exit status: non-zero when, at the full worker count (medians of 3, with
// up to 4 measurement retries against host noise), the sharded configuration
// fails to cut BOTH control-lock acquisitions per granule AND mean lock-hold
// nanoseconds per granule strictly below the single-shard baseline, or fails
// to hold rundown-window utilization (final 10% of granules) at >= the
// baseline, or granule counts drift.
//
// `--check` runs the correctness matrix instead (small programs x shard
// geometries x all three runtimes' invariants) — the mode the TSAN CI job
// executes so shard-boundary races surface under ThreadSanitizer rather
// than in a perf gate.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "runtime/threaded_runtime.hpp"

namespace {

using namespace pax;

// Workload/knobs shared with bench_t10_alloc via bench_util.hpp (the t10
// allocation gate re-runs this exact protocol).
constexpr GranuleId kN = pax::bench::kT9Granules;
constexpr std::uint64_t kTotal = pax::bench::kT9Total;
constexpr std::uint32_t kBatch = pax::bench::kT9Batch;

using pax::bench::RundownProbe;
using pax::bench::run_t9_protocol;
using pax::bench::spin;

struct RunOut {
  rt::RtResult res;
  double rundown_util = 0.0;
};

RunOut run_once(std::uint32_t workers, std::uint32_t shards) {
  RundownProbe probe(kTotal);
  RunOut out;
  // lockfree pinned OFF on BOTH arms: this gate isolates the sharding layer
  // (PR 4's mutex shards vs the 1-shard protocol), and must keep doing so
  // now that the shipped default is the PR 8 lock-free engine — which has
  // its own gate (bench_t12_lockfree) against this bench's sharded arm.
  out.res = run_t9_protocol(workers, shards, &probe, nullptr, /*lockfree=*/false);
  out.rundown_util = probe.window_utilization(workers);
  return out;
}

double control_locks_per_granule(const rt::RtResult& r) {
  return static_cast<double>(r.refill_lock_acquisitions) /
         static_cast<double>(r.granules_executed);
}

double hold_ns_per_granule(const rt::RtResult& r) {
  return static_cast<double>(r.exec_lock_hold_ns) /
         static_cast<double>(r.granules_executed);
}

/// Median of three repetitions by the given key.
template <typename Key>
const RunOut& median_by(std::vector<RunOut>& reps, Key key) {
  std::sort(reps.begin(), reps.end(),
            [&](const RunOut& x, const RunOut& y) { return key(x) < key(y); });
  return reps[reps.size() / 2];
}

struct ModeMetrics {
  double lpg = 0.0;   // control-lock acquisitions / granule
  double hold = 0.0;  // control-lock hold ns / granule
  double util = 0.0;  // rundown-window utilization
  RunOut mid;         // utilization-median repetition, for table rows
  bool granules_ok = true;
};

ModeMetrics metrics_of(std::vector<RunOut> r) {
  ModeMetrics m;
  for (const RunOut& x : r)
    if (x.res.granules_executed != kTotal) m.granules_ok = false;
  m.lpg = control_locks_per_granule(
      median_by(r, [](const RunOut& x) { return control_locks_per_granule(x.res); })
          .res);
  m.hold = hold_ns_per_granule(
      median_by(r, [](const RunOut& x) { return hold_ns_per_granule(x.res); }).res);
  const RunOut& mid = median_by(r, [](const RunOut& x) { return x.rundown_util; });
  m.util = mid.rundown_util;
  m.mid = mid;
  return m;
}

// --- correctness matrix (--check; runs in the TSAN CI job) -------------------

bool check_mode() {
  bool ok = true;
  auto expect = [&](bool cond, const char* what) {
    if (!cond) {
      std::fprintf(stderr, "t9 check FAILED: %s\n", what);
      ok = false;
    }
  };

  // Threaded runtime across shard geometries, with an elevated conflicting
  // submission landing mid-run (the ordering sharding must not lose).
  for (std::uint32_t shards : {1u, 2u, 7u, kAutoShards}) {
    const GranuleId n = 224;
    PhaseProgram prog;
    const PhaseId a = prog.define_phase(make_phase("a", n).writes("X"));
    const PhaseId b = prog.define_phase(make_phase("b", n).reads("X").writes("Y"));
    const PhaseId c = prog.define_phase(make_phase("c", 16).reads("X").writes("Z"));
    prog.dispatch(a, {EnableClause{"b", MappingKind::kIdentity, {}}});
    prog.dispatch(b);
    prog.halt();

    std::atomic<std::uint64_t> a_done{0}, b_done{0}, c_done{0};
    std::atomic<bool> submitted{false};
    rt::ThreadedRuntime* rt_ptr = nullptr;
    rt::BodyTable bodies;
    bodies.set(a, [&](GranuleRange r, WorkerId) {
      if (!submitted.exchange(true))
        rt_ptr->submit_conflicting(/*blocker=*/0, c, {0, 16});
      spin(200);
      a_done.fetch_add(r.size(), std::memory_order_relaxed);
    });
    bodies.set(b, [&](GranuleRange r, WorkerId) {
      // Identity enablement: a granule's phase-a counterpart completed.
      expect(a_done.load(std::memory_order_relaxed) > 0, "b ran before any a");
      b_done.fetch_add(r.size(), std::memory_order_relaxed);
    });
    bodies.set(c, [&](GranuleRange r, WorkerId) {
      expect(a_done.load(std::memory_order_relaxed) == n,
             "conflicting c ran before its blocker completed");
      c_done.fetch_add(r.size(), std::memory_order_relaxed);
    });

    ExecConfig cfg;
    cfg.grain = 4;
    rt::RtConfig rc;
    rc.workers = 4;
    rc.batch = 4;
    rc.shards = shards;
    // Mutex engine, matching the perf arms above: with the shipped default
    // now lock-free, this matrix is what keeps the retained baseline under
    // TSAN (bench_t12_lockfree --check covers the lock-free engine).
    rc.lockfree = false;
    rt::ThreadedRuntime runtime(prog, cfg, CostModel::free_of_charge(), bodies, rc);
    rt_ptr = &runtime;
    const rt::RtResult res = runtime.run();
    // run() already validated the shard census; cross-check the totals.
    expect(res.granules_executed == 2ull * n + 16, "granule total drifted");
    expect(a_done.load() == n && b_done.load() == n && c_done.load() == 16,
           "per-phase counts drifted");
    expect(res.exec_lock_acquisitions ==
               res.refill_lock_acquisitions + res.wait_lock_acquisitions,
           "lock-split identity broken");
  }

  // Simulator: shards=1 twice must be bit-identical; more shards may only
  // change timing, never the work done.
  {
    using namespace pax::bench;
    const TwoPhase tp = two_phase(256, 256, MappingKind::kReverseIndirect, 3);
    ExecConfig cfg;
    cfg.grain = 4;
    sim::Workload wl(11);
    auto run_sim = [&](std::uint32_t shards) {
      sim::MachineConfig mc;
      mc.workers = 16;
      mc.record_intervals = false;
      mc.shards = shards;
      return sim::simulate(tp.program, cfg, CostModel{}, wl, mc);
    };
    const sim::SimResult s1a = run_sim(1), s1b = run_sim(1);
    expect(s1a.makespan == s1b.makespan && s1a.exec_ticks == s1b.exec_ticks,
           "sim shards=1 not deterministic");
    const sim::SimResult s4 = run_sim(4);
    expect(s4.granules_executed == s1a.granules_executed,
           "sim sharding changed the executed work");
    expect(s4.shard_exec_ticks.size() == 4, "sim lane billing missing");
  }
  std::printf("t9 correctness matrix: %s\n", ok ? "PASS" : "FAIL");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pax;
  using namespace pax::bench;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--check") == 0) return check_mode() ? 0 : 1;

  JsonReport json = JsonReport::from_args(argc, argv);
  print_banner("T9 — sharded executive: per-shard handout vs one mutex",
               "partitioning the executive's worker-facing state removes the "
               "management serialization that re-centralized at the refill "
               "path, without giving up the rundown fill");

  const std::uint32_t workers =
      std::max(8u, std::min(16u, std::thread::hardware_concurrency()));
  json.set_meta("workers", workers);
  json.set_meta("batch", kBatch);
  json.set_meta("shards", "1 vs auto");
  constexpr int kReps = 3;
  constexpr int kAttempts = 4;  // whole-measurement retries against host noise

  bool pass = false;
  ModeMetrics base, shard;
  for (int attempt = 0; attempt < kAttempts && !pass; ++attempt) {
    // Interleave the repetitions (b,s,b,s,...) so slow host-load drift hits
    // both modes evenly instead of biasing whichever ran last.
    std::vector<RunOut> base_reps, shard_reps;
    for (int i = 0; i < kReps; ++i) {
      base_reps.push_back(run_once(workers, /*shards=*/1));
      shard_reps.push_back(run_once(workers, kAutoShards));
    }
    base = metrics_of(std::move(base_reps));
    shard = metrics_of(std::move(shard_reps));
    pass = base.granules_ok && shard.granules_ok && shard.lpg < base.lpg &&
           shard.hold < base.hold && shard.util >= base.util;
  }

  Table t("T9 — single-shard (PR 3) baseline vs sharded executive");
  t.header({"workers", "mode", "shards", "granules", "ctl locks/g", "hold ns/g",
            "shard hits", "sweeps scat.", "rundown util", "wall ms"});
  for (const ModeMetrics* m : {&base, &shard}) {
    const rt::RtResult& r = m->mid.res;
    t.row({std::to_string(workers), m == &base ? "1-shard" : "sharded",
           std::to_string(r.shards_used), Table::count(r.granules_executed),
           fixed(m->lpg, 4), fixed(m->hold, 1),
           Table::count(r.shard_hits + r.shard_sibling_hits),
           Table::count(r.shard_scattered), Table::pct(m->util, 1),
           fixed(static_cast<double>(r.wall.count()) / 1e6, 1)});
    const std::string config = "workers=" + std::to_string(workers) +
                               " batch=" + std::to_string(kBatch) +
                               " shards=" + std::to_string(r.shards_used);
    json.add("t9_shard", "control_locks_per_granule", m->lpg, config);
    json.add("t9_shard", "lock_hold_ns_per_granule", m->hold, config);
    json.add("t9_shard", "rundown_utilization", m->util, config);
    json.add("t9_shard", "shard_hits",
             static_cast<double>(r.shard_hits + r.shard_sibling_hits), config);
  }
  t.print(std::cout);

  // --- the same design in the discrete-event model ---------------------------
  {
    Table s("T9b — simulator: management lanes vs serial executive (32 workers)");
    s.header({"shards", "makespan", "exec ticks", "hottest lane", "utilization"});
    const TwoPhase tp = two_phase(4096, 4096, MappingKind::kIdentity);
    ExecConfig cfg;
    cfg.grain = 1;  // management-bound on purpose: every pop is a round-trip
    sim::Workload wl(7);
    sim::PhaseWorkload pw;
    pw.model = sim::DurationModel::kFixed;
    pw.mean = 120;
    wl.set_phase(0, pw);
    wl.set_phase(1, pw);
    for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
      sim::MachineConfig mc;
      mc.workers = 32;
      mc.record_intervals = false;
      mc.shards = shards;
      const sim::SimResult r = sim::simulate(tp.program, cfg, CostModel{}, wl, mc);
      const std::uint64_t hottest =
          *std::max_element(r.shard_exec_ticks.begin(), r.shard_exec_ticks.end());
      json.add("t9_shard", "sim_makespan", static_cast<double>(r.makespan),
               "sim shards=" + std::to_string(shards));
      s.row({std::to_string(shards), Table::count(r.makespan),
             Table::count(r.exec_ticks), Table::count(hottest),
             Table::pct(r.utilization(), 1)});
    }
    s.print(std::cout);
    std::printf(
        "\nwith more lanes the hottest lane's busy time — the serial bottleneck\n"
        "a worker can queue behind — shrinks, which is the simulator's\n"
        "rendering of the shard decontention the threaded table measures.\n");
  }

  std::printf(
      "\nacceptance at %u workers (medians of %d, up to %d attempts): control "
      "locks/granule %.4f vs baseline %.4f (need <), hold ns/granule %.1f vs "
      "%.1f (need <), rundown-window utilization %.1f%% vs %.1f%% (need >=): "
      "%s\n",
      workers, kReps, kAttempts, shard.lpg, base.lpg, shard.hold, base.hold,
      100.0 * shard.util, 100.0 * base.util, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
