// bench_f1_rundown_timeline — Experiment F1.
//
// The paper's introduction example, at full scale: "consider the situation
// when the potential grid is 1024 points on a side (2**20 grid points) and
// 1000 processors are available. Each computational phase will provide
// 524,288 individual computations, or 524 computations for each of the 1000
// processors; however, 288 computations will be left over ... This will
// leave 712 processors with nothing to do while the final 288 computations
// are carried out."
//
// We simulate two 524,288-granule phases on 1000 processors with unit-time
// computations and free management (the example is idealized), and measure
// how many processors are busy during the final round — then show the same
// run with identity overlap, where the tail fills with next-phase work.
#include <cstdio>
#include <cstring>
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace pax;
  using namespace pax::bench;
  JsonReport json = JsonReport::from_args(argc, argv);
  print_banner("F1 — checkerboard rundown at 1024^2 / 1000 processors",
               "524 computations per processor, 288 left over, 712 processors "
               "idle during the tail");

  constexpr GranuleId kGranules = 524288;  // 2**20 / 2
  constexpr std::uint32_t kWorkers = 1000;
  constexpr SimTime kTaskTicks = 100;

  TwoPhase tp = two_phase(kGranules, kGranules, MappingKind::kIdentity);
  sim::Workload wl(1);
  sim::PhaseWorkload pw;
  pw.model = sim::DurationModel::kFixed;
  pw.mean = static_cast<double>(kTaskTicks);
  wl.set_phase(tp.a, pw);
  wl.set_phase(tp.b, pw);

  sim::MachineConfig mc;
  mc.workers = kWorkers;
  mc.record_intervals = true;

  ExecConfig barrier;
  barrier.overlap = false;
  barrier.grain = 1;
  ExecConfig overlap = barrier;
  overlap.overlap = true;

  const CostModel free = CostModel::free_of_charge();
  const auto r_b = sim::simulate(tp.program, barrier, free, wl, mc);
  const auto r_o = sim::simulate(tp.program, overlap, free, wl, mc);

  // Busy processors during the final round of phase 1 (barrier).
  const SimTime p1_done = r_b.phase_completion(tp.a);
  const double tail_busy = r_b.busy_workers_in(p1_done - kTaskTicks, p1_done);
  const double tail_idle = kWorkers - tail_busy;

  const SimTime p1_done_o = r_o.phase_completion(tp.a);
  const double tail_busy_o = r_o.busy_workers_in(p1_done_o - kTaskTicks, p1_done_o);

  json.set_meta("workers", kWorkers);
  json.set_meta("granules_per_phase", kGranules);
  for (const auto* mode : {"barrier", "overlap"}) {
    const bool b = std::strcmp(mode, "barrier") == 0;
    const auto& r = b ? r_b : r_o;
    const std::string config = std::string("workers=1000 mode=") + mode;
    json.add("f1_rundown", "tail_busy_processors", b ? tail_busy : tail_busy_o,
             config);
    json.add("f1_rundown", "makespan", static_cast<double>(r.makespan), config);
    json.add("f1_rundown", "utilization", r.utilization(), config);
  }

  Table t("F1 — rundown tail (last task round of phase 1)");
  t.header({"quantity", "paper", "barrier run", "overlap run"});
  t.row({"computations per phase", Table::count(524288), Table::count(kGranules),
         Table::count(kGranules)});
  t.row({"full rounds per processor", "524", "524", "-"});
  t.row({"computations left over", "288", "288", "-"});
  t.row({"busy processors in tail", "288", fixed(tail_busy, 1),
         fixed(tail_busy_o, 1)});
  t.row({"idle processors in tail", "712", fixed(tail_idle, 1),
         fixed(kWorkers - tail_busy_o, 1)});
  t.row({"makespan (ticks)", "-", Table::count(r_b.makespan),
         Table::count(r_o.makespan)});
  t.row({"overall utilization", "-", Table::pct(r_b.utilization(), 2),
         Table::pct(r_o.utilization(), 2)});
  t.print(std::cout);

  // Utilization timelines (60 buckets) — the figure, as sparklines + rows.
  const auto tb = r_b.timeline(60);
  const auto to = r_o.timeline(60);
  std::printf("\nutilization timeline (60 buckets over each makespan):\n");
  auto spark = [](const std::vector<double>& v) {
    static const char* bars[] = {" ", "▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
    std::string s;
    for (double x : v) {
      int level = static_cast<int>(x * 8.0 + 0.5);
      if (level < 0) level = 0;
      if (level > 8) level = 8;
      s += bars[level];
    }
    return s;
  };
  std::printf("  barrier  |%s|\n", spark(tb).c_str());
  std::printf("  overlap  |%s|\n", spark(to).c_str());
  std::printf("\nThe barrier timeline dips to %.1f%% at each phase boundary; the\n"
              "overlap timeline holds near 100%% until the final joint rundown.\n",
              100.0 * tb[29]);
  return 0;
}
