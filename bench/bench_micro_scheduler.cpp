// bench_micro_scheduler — Experiment M1.
//
// google-benchmark microbenchmarks of the executive's primitive operations,
// supporting the T3 management-ratio accounting: descriptor pool churn,
// waiting-queue and conflict-ring operations, carving, composite-map
// construction and counter updates, and a full request/complete cycle.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/descriptor.hpp"
#include "core/enablement.hpp"
#include "core/executive.hpp"
#include "core/range_set.hpp"
#include "core/waiting_queue.hpp"

namespace pax {
namespace {

void BM_DescriptorPoolAcquireRelease(benchmark::State& state) {
  DescriptorPool pool;
  for (auto _ : state) {
    Descriptor& d = pool.acquire(0, 0, {0, 16});
    benchmark::DoNotOptimize(&d);
    pool.release(d);
  }
}
BENCHMARK(BM_DescriptorPoolAcquireRelease);

void BM_WaitingQueueEnqueueDequeue(benchmark::State& state) {
  DescriptorPool pool;
  WaitingQueue q;
  std::vector<Descriptor*> descs;
  for (int i = 0; i < 64; ++i)
    descs.push_back(&pool.acquire(0, 0, {static_cast<GranuleId>(i),
                                         static_cast<GranuleId>(i + 1)}));
  for (auto _ : state) {
    for (Descriptor* d : descs) q.enqueue(*d);
    while (Descriptor* d = q.pop()) benchmark::DoNotOptimize(d);
  }
  for (Descriptor* d : descs) pool.release(*d);
}
BENCHMARK(BM_WaitingQueueEnqueueDequeue);

void BM_ConflictRingPushDrain(benchmark::State& state) {
  DescriptorPool pool;
  Descriptor& owner = pool.acquire(0, 0, {0, 64});
  std::vector<Descriptor*> waiters;
  for (int i = 0; i < 16; ++i)
    waiters.push_back(&pool.acquire(1, 1, {static_cast<GranuleId>(i),
                                           static_cast<GranuleId>(i + 1)}));
  for (auto _ : state) {
    for (Descriptor* w : waiters) owner.conflict_queue.push_back(*w);
    owner.conflict_queue.drain([](Descriptor& d) { benchmark::DoNotOptimize(&d); });
  }
  for (Descriptor* w : waiters) pool.release(*w);
  pool.release(owner);
}
BENCHMARK(BM_ConflictRingPushDrain);

void BM_RangeSetInsertFragmented(benchmark::State& state) {
  const auto n = static_cast<GranuleId>(state.range(0));
  for (auto _ : state) {
    RangeSet rs;
    // Worst-ish case: evens then odds (maximal fragmentation, then merge).
    for (GranuleId g = 0; g < n; g += 2) rs.insert({g, g + 1});
    for (GranuleId g = 1; g < n; g += 2) rs.insert({g, g + 1});
    benchmark::DoNotOptimize(rs.fragments());
  }
}
BENCHMARK(BM_RangeSetInsertFragmented)->Arg(64)->Arg(512);

void BM_CompositeMapBuildReverse(benchmark::State& state) {
  const auto n = static_cast<GranuleId>(state.range(0));
  auto requires_of = [n](GranuleId r, std::vector<GranuleId>& need) {
    std::uint64_t s = 0x1234 ^ (static_cast<std::uint64_t>(r) << 7);
    for (int j = 0; j < 10; ++j)
      need.push_back(static_cast<GranuleId>(splitmix64(s) % n));
  };
  for (auto _ : state) {
    auto built = CompositeGranuleMap::build_reverse(n, n, requires_of);
    benchmark::DoNotOptimize(built.entries);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 10);
}
BENCHMARK(BM_CompositeMapBuildReverse)->Arg(256)->Arg(4096);

void BM_CompositeMapOnComplete(benchmark::State& state) {
  const GranuleId n = 4096;
  auto requires_of = [](GranuleId r, std::vector<GranuleId>& need) {
    std::uint64_t s = 0x9876 ^ (static_cast<std::uint64_t>(r) << 9);
    for (int j = 0; j < 10; ++j)
      need.push_back(static_cast<GranuleId>(splitmix64(s) % n));
  };
  auto built = CompositeGranuleMap::build_reverse(n, n, requires_of);
  std::vector<GranuleId> newly;
  GranuleId g = 0;
  for (auto _ : state) {
    state.PauseTiming();
    // Re-build once we run out of fresh granules.
    if (g == n) {
      built = CompositeGranuleMap::build_reverse(n, n, requires_of);
      g = 0;
    }
    newly.clear();
    state.ResumeTiming();
    benchmark::DoNotOptimize(built.map.on_complete(g++, newly));
  }
}
BENCHMARK(BM_CompositeMapOnComplete);

void BM_RequestCompleteCycle(benchmark::State& state) {
  // Full executive round trip: request a grain-4 task and complete it, over
  // a long single-phase program (re-created when drained).
  const GranuleId n = 1 << 20;
  auto make_core = [&] {
    auto prog = std::make_unique<PhaseProgram>();
    PhaseId p = prog->define_phase(make_phase("p", n));
    prog->dispatch(p);
    prog->halt();
    return prog;
  };
  auto prog = make_core();
  ExecConfig cfg;
  cfg.grain = 4;
  auto core = std::make_unique<ExecutiveCore>(*prog, cfg, CostModel::free_of_charge());
  core->start();
  for (auto _ : state) {
    auto a = core->request_work(0);
    if (!a.has_value()) {
      state.PauseTiming();
      prog = make_core();
      core = std::make_unique<ExecutiveCore>(*prog, cfg, CostModel::free_of_charge());
      core->start();
      state.ResumeTiming();
      a = core->request_work(0);
    }
    core->complete(a->ticket);
  }
}
BENCHMARK(BM_RequestCompleteCycle);

void BM_RequestCompleteCycleWithIdentityOverlap(benchmark::State& state) {
  const GranuleId n = 1 << 19;
  auto make_prog = [&] {
    auto prog = std::make_unique<PhaseProgram>();
    PhaseId a = prog->define_phase(make_phase("a", n).writes("X"));
    PhaseId b = prog->define_phase(make_phase("b", n).reads("X"));
    prog->dispatch(a, {EnableClause{"b", MappingKind::kIdentity, {}}});
    prog->dispatch(b);
    prog->halt();
    return prog;
  };
  ExecConfig cfg;
  cfg.grain = 4;
  auto prog = make_prog();
  auto core = std::make_unique<ExecutiveCore>(*prog, cfg, CostModel::free_of_charge());
  core->start();
  for (auto _ : state) {
    auto a = core->request_work(0);
    if (!a.has_value()) {
      state.PauseTiming();
      prog = make_prog();
      core = std::make_unique<ExecutiveCore>(*prog, cfg, CostModel::free_of_charge());
      core->start();
      state.ResumeTiming();
      a = core->request_work(0);
    }
    core->complete(a->ticket);
  }
}
BENCHMARK(BM_RequestCompleteCycleWithIdentityOverlap);

}  // namespace
}  // namespace pax

BENCHMARK_MAIN();
