// bench_t5_split_policy — Experiment T5 (ablation).
//
// The paper debates how to split queued successor descriptions when the
// current description splits: inline at worker-request time ("the
// additional delays ... may represent an unacceptable situation"),
// presplitting in executive idle time, or deferred successor-splitting
// tasks. This bench compares the three policies under both executive
// placements.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace pax;
  using namespace pax::bench;
  print_banner("T5 — successor split-propagation policy (identity mapping)",
               "inline splitting delays the request path; presplitting and "
               "successor-splitting tasks move it into executive idle time");

  constexpr std::uint32_t kWorkers = 48;
  constexpr GranuleId kGranules = 1536;  // 8 tasks/proc at grain 4

  // Make split propagation expensive relative to other management so the
  // policy choice is visible (e.g. descriptions with large attached state).
  CostModel costs;
  costs.set(MgmtOp::kSuccessorSplit, 24);

  Table t("T5 — split policy x executive placement");
  t.header({"policy", "placement", "makespan", "request latency", "p-like max",
            "succ splits", "utilization"});

  for (ExecPlacement placement :
       {ExecPlacement::kWorkerStealing, ExecPlacement::kDedicated}) {
    for (SplitPolicy policy :
         {SplitPolicy::kInline, SplitPolicy::kPresplit, SplitPolicy::kDeferred}) {
      TwoPhase tp = two_phase(kGranules, kGranules, MappingKind::kIdentity);
      sim::Workload wl(51);
      sim::PhaseWorkload pw;
      pw.model = sim::DurationModel::kUniform;
      pw.mean = 600;
      pw.spread = 240;
      wl.set_phase(tp.a, pw);
      wl.set_phase(tp.b, pw);

      sim::MachineConfig mc;
      mc.workers = kWorkers;
      mc.record_intervals = false;

      ExecConfig cfg;
      cfg.grain = 4;
      cfg.overlap = true;
      cfg.split_policy = policy;
      cfg.placement = placement;

      const auto res = sim::simulate(tp.program, cfg, costs, wl, mc);
      t.row({to_string(policy), to_string(placement), Table::count(res.makespan),
             Table::num(res.request_latency.mean(), 1),
             Table::num(res.request_latency.max(), 0),
             Table::count(res.ledger.count(MgmtOp::kSuccessorSplit)),
             Table::pct(res.utilization(), 1)});
    }
    t.separator();
  }
  t.print(std::cout);
  return 0;
}
