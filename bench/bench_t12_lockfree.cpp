// bench_t12_lockfree — Experiment T12.
//
// PR 4 sharded the executive's worker-facing state behind per-shard mutexes;
// this bench gates the layer that retires those mutexes from the warm path:
// the bounded MPMC ring engine (core/mpmc_ring.hpp, DESIGN.md §13). A warm
// acquire is now a lock-free pop from the home ready ring (plus a lock-free
// sibling probe and a lock-free deposit push) — no mutex of any kind — while
// the control sweep keeps every slow-path duty it had: drain deposit rings,
// coalesced retire, scatter with overflow spill, elevated releases.
//
// Both arms run bench_util's shared T9 protocol at 16+ workers so the
// comparison can never drift onto a different workload:
//   baseline arm: ShardConfig.lockfree = false — the PR 4 mutex shards,
//     their warm shard-mutex sections counted by ShardLockTimer into
//     shard_lock_acquisitions / shard_lock_hold_ns;
//   lock-free arm: ShardConfig.lockfree = true — the shipped default.
//
// The gated metric is TOTAL scheduler-lock traffic, control mutex + shard
// mutexes combined: (refill + shard lock acquisitions)/granule and
// (control + shard hold ns)/granule. Counting only the control mutex would
// let the rings win by shuffling cost into the shard mutexes (or vice
// versa); the combined totals close that loophole.
//
// Exit status: non-zero when, at the full worker count (medians of 3, up to
// 4 attempts, interleaved), the lock-free arm fails to hold BOTH combined
// metrics strictly below the mutex baseline, or fails rundown-window
// utilization >= baseline, or its warm-path heap traffic misses the T10
// bar (>= 10x below the pre-rework 0.123 allocs/granule, measured over the
// same deterministic warm window discipline as bench_t10_alloc), or the
// warm acquire cost stops being O(taken) — cost at ring depth 4096 must
// stay within 4x of depth 64 (the old erase-from-front was O(buffer), and
// ran away with depth; this pins the fix of that defect), or granule
// counts drift.
//
// `--check` runs the correctness matrix instead — bench_t9_shard's matrix
// on the lock-free engine (shard geometries x mid-run elevated conflicting
// submission x census cross-checks) — the mode the TSAN CI job executes so
// ring publish/consume races surface under ThreadSanitizer.
#define PAX_ALLOC_STATS_IMPLEMENT
#include "common/alloc_stats.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/sharded_executive.hpp"
#include "runtime/threaded_runtime.hpp"

namespace {

using namespace pax;

constexpr std::uint64_t kTotal = pax::bench::kT9Total;
constexpr std::uint32_t kBatch = pax::bench::kT9Batch;

using pax::bench::RundownProbe;
using pax::bench::fixed;
using pax::bench::run_t9_protocol;
using pax::bench::spin;

struct RunOut {
  rt::RtResult res;
  double rundown_util = 0.0;
};

RunOut run_once(std::uint32_t workers, bool lockfree) {
  RundownProbe probe(kTotal);
  RunOut out;
  // Both arms at kAutoShards: same geometry, same workload — the engine is
  // the only variable.
  out.res = run_t9_protocol(workers, kAutoShards, &probe, nullptr, lockfree);
  out.rundown_util = probe.window_utilization(workers);
  return out;
}

/// Combined scheduler-lock acquisitions per granule: control-mutex refill
/// sections plus warm shard-mutex sections. The lock-free arm's shard term
/// is structurally zero; the baseline pays both.
double total_locks_per_granule(const rt::RtResult& r) {
  return static_cast<double>(r.refill_lock_acquisitions +
                             r.shard_lock_acquisitions) /
         static_cast<double>(r.granules_executed);
}

/// Combined acquire-to-release hold ns per granule, same two terms.
double total_hold_ns_per_granule(const rt::RtResult& r) {
  return static_cast<double>(r.exec_lock_hold_ns + r.shard_lock_hold_ns) /
         static_cast<double>(r.granules_executed);
}

/// Median of repetitions by the given key.
template <typename Key>
const RunOut& median_by(std::vector<RunOut>& reps, Key key) {
  std::sort(reps.begin(), reps.end(),
            [&](const RunOut& x, const RunOut& y) { return key(x) < key(y); });
  return reps[reps.size() / 2];
}

struct ModeMetrics {
  double lpg = 0.0;   // combined lock acquisitions / granule
  double hold = 0.0;  // combined lock hold ns / granule
  double util = 0.0;  // rundown-window utilization
  RunOut mid;         // utilization-median repetition, for table rows
  bool granules_ok = true;
};

ModeMetrics metrics_of(std::vector<RunOut> r) {
  ModeMetrics m;
  for (const RunOut& x : r)
    if (x.res.granules_executed != kTotal) m.granules_ok = false;
  m.lpg = total_locks_per_granule(
      median_by(r, [](const RunOut& x) { return total_locks_per_granule(x.res); })
          .res);
  m.hold = total_hold_ns_per_granule(
      median_by(r,
                [](const RunOut& x) { return total_hold_ns_per_granule(x.res); })
          .res);
  const RunOut& mid = median_by(r, [](const RunOut& x) { return x.rundown_util; });
  m.util = mid.rundown_util;
  m.mid = mid;
  return m;
}

// --- warm-window heap traffic on the lock-free engine ------------------------
// Same discipline as bench_t10_alloc's gate 1 (skip the first 500 cycles of
// map build and high-water growth, then count), but driven through the
// sharded executive's acquire protocol so the rings themselves — pops,
// deposit pushes, sweeps, spill — are the measured path. Deterministic:
// one thread plays the worker protocol against the lock-free engine.

struct SteadyState {
  double allocs_per_granule = 0.0;
  double bytes_per_granule = 0.0;
  std::uint64_t granules = 0;
};

SteadyState steady_state_allocs_lockfree() {
  const GranuleId n = 200000;
  PhaseProgram prog;
  prog.define_phase(make_phase("a", n).writes("X"));
  prog.define_phase(make_phase("b", n).reads("X").writes("Y"));
  EnableClause clause{"b", MappingKind::kReverseIndirect, {}};
  clause.indirection.requires_of = [n](GranuleId r, std::vector<GranuleId>& out) {
    out.insert(out.end(), {r, (r * 7 + 3) % n, (r * 13 + 11) % n});
  };
  prog.dispatch(0, {clause});
  prog.dispatch(1);
  prog.halt();

  ExecConfig cfg;
  cfg.grain = 16;
  cfg.defer_map_build = false;
  ShardConfig sc;
  sc.shards = 2;
  sc.workers = 2;
  sc.batch = 16;  // lockfree defaults true: rings are the measured engine
  ShardedExecutive exec(prog, cfg, CostModel::free_of_charge(), sc);
  exec.start();

  std::vector<Assignment> out;
  out.reserve(64);
  std::vector<Ticket> done;
  done.reserve(64);
  SteadyState res;
  std::uint64_t measured_allocs = 0, measured_bytes = 0;
  int cycles = 0, dry = 0;
  while (!exec.finished() && dry < 10000) {
    out.clear();
    const AllocTotals t0 = alloc_stats::thread_totals();
    const ShardAcquire r = exec.acquire(0, 16, done, out);
    // acquire() consumed `done` (deposited or retired); refill it with this
    // cycle's tickets for the next call — the worker protocol verbatim.
    done.clear();
    for (const Assignment& a : out) done.push_back(a.ticket);
    ++cycles;
    if (cycles > 500) {
      const AllocTotals d = alloc_stats::delta(t0, alloc_stats::thread_totals());
      measured_allocs += d.allocs;
      measured_bytes += d.bytes;
      for (const Assignment& a : out) res.granules += a.range.size();
    }
    dry = r.taken == 0 ? dry + 1 : 0;
  }
  if (!done.empty()) {
    out.clear();
    exec.acquire(0, 0, done, out);  // retire the final batch
  }
  if (res.granules > 0) {
    res.allocs_per_granule =
        static_cast<double>(measured_allocs) / static_cast<double>(res.granules);
    res.bytes_per_granule =
        static_cast<double>(measured_bytes) / static_cast<double>(res.granules);
  }
  return res;
}

// --- correctness matrix (--check; runs in the TSAN CI job) -------------------
// bench_t9_shard's matrix with the engine flipped to lock-free: the same
// shard geometries, the same mid-run elevated conflicting submission, the
// same census/total cross-checks — TSAN watches the ring publish edges.

bool check_mode() {
  bool ok = true;
  auto expect = [&](bool cond, const char* what) {
    if (!cond) {
      std::fprintf(stderr, "t12 check FAILED: %s\n", what);
      ok = false;
    }
  };

  for (std::uint32_t shards : {1u, 2u, 7u, kAutoShards}) {
    const GranuleId n = 224;
    PhaseProgram prog;
    const PhaseId a = prog.define_phase(make_phase("a", n).writes("X"));
    const PhaseId b = prog.define_phase(make_phase("b", n).reads("X").writes("Y"));
    const PhaseId c = prog.define_phase(make_phase("c", 16).reads("X").writes("Z"));
    prog.dispatch(a, {EnableClause{"b", MappingKind::kIdentity, {}}});
    prog.dispatch(b);
    prog.halt();

    std::atomic<std::uint64_t> a_done{0}, b_done{0}, c_done{0};
    std::atomic<bool> submitted{false};
    rt::ThreadedRuntime* rt_ptr = nullptr;
    rt::BodyTable bodies;
    bodies.set(a, [&](GranuleRange r, WorkerId) {
      if (!submitted.exchange(true))
        rt_ptr->submit_conflicting(/*blocker=*/0, c, {0, 16});
      spin(200);
      a_done.fetch_add(r.size(), std::memory_order_relaxed);
    });
    bodies.set(b, [&](GranuleRange r, WorkerId) {
      expect(a_done.load(std::memory_order_relaxed) > 0, "b ran before any a");
      b_done.fetch_add(r.size(), std::memory_order_relaxed);
    });
    bodies.set(c, [&](GranuleRange r, WorkerId) {
      expect(a_done.load(std::memory_order_relaxed) == n,
             "conflicting c ran before its blocker completed");
      c_done.fetch_add(r.size(), std::memory_order_relaxed);
    });

    ExecConfig cfg;
    cfg.grain = 4;
    rt::RtConfig rc;
    rc.workers = 4;
    rc.batch = 4;
    rc.shards = shards;
    rc.lockfree = true;  // the engine under test (t9 --check pins the mutex one)
    rt::ThreadedRuntime runtime(prog, cfg, CostModel::free_of_charge(), bodies, rc);
    rt_ptr = &runtime;
    const rt::RtResult res = runtime.run();
    // run() already validated the ring-aware shard census; cross-check totals.
    expect(res.granules_executed == 2ull * n + 16, "granule total drifted");
    expect(a_done.load() == n && b_done.load() == n && c_done.load() == 16,
           "per-phase counts drifted");
    expect(res.exec_lock_acquisitions ==
               res.refill_lock_acquisitions + res.wait_lock_acquisitions,
           "lock-split identity broken");
    // Warm handouts must be lock-free: the shard-mutex warm sections the
    // ShardLockTimer counts exist only in the mutex engine.
    expect(res.shard_lock_acquisitions == 0 && res.shard_lock_hold_ns == 0,
           "lock-free engine took a warm shard mutex");
    // shard_hits/sibling_hits count served CALLS, ring_pops counts popped
    // ASSIGNMENTS — every warm hit pops at least one, so pops >= hits, and
    // warm pops happen only through acquire_lockfree (never sweeps).
    if (shards > 1)
      expect(res.shard_ring_pops >= res.shard_hits + res.shard_sibling_hits,
             "ring pops fewer than the warm hits they served");
  }
  std::printf("t12 correctness matrix: %s\n", ok ? "PASS" : "FAIL");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pax;
  using namespace pax::bench;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--check") == 0) return check_mode() ? 0 : 1;

  JsonReport json = JsonReport::from_args(argc, argv);
  print_banner("T12 — lock-free shard handout: MPMC rings vs mutex shards",
               "the warm worker protocol — pop work, probe a sibling, park "
               "finished tickets — takes no mutex at all; every mutex that "
               "remains is a slow-path control sweep");

  const std::uint32_t workers =
      std::max(16u, std::min(32u, std::thread::hardware_concurrency()));
  json.set_meta("workers", workers);
  json.set_meta("batch", kBatch);
  json.set_meta("engines", "mutex baseline vs lock-free rings");
  constexpr int kReps = 3;
  constexpr int kAttempts = 4;  // whole-measurement retries against host noise

  // --- gate: combined lock traffic, hold time, rundown utilization -----------
  bool gate1 = false;
  ModeMetrics base, lf;
  for (int attempt = 0; attempt < kAttempts && !gate1; ++attempt) {
    // Interleave the repetitions (m,l,m,l,...) so slow host-load drift hits
    // both engines evenly instead of biasing whichever ran last.
    std::vector<RunOut> base_reps, lf_reps;
    for (int i = 0; i < kReps; ++i) {
      base_reps.push_back(run_once(workers, /*lockfree=*/false));
      lf_reps.push_back(run_once(workers, /*lockfree=*/true));
    }
    base = metrics_of(std::move(base_reps));
    lf = metrics_of(std::move(lf_reps));
    gate1 = base.granules_ok && lf.granules_ok && lf.lpg < base.lpg &&
            lf.hold < base.hold && lf.util >= base.util;
  }

  Table t("T12 — mutex-shard (PR 4) baseline vs lock-free rings");
  t.header({"workers", "engine", "shards", "granules", "locks/g", "hold ns/g",
            "ring pops", "dry probes", "push full", "cas retries",
            "rundown util", "wall ms"});
  for (const ModeMetrics* m : {&base, &lf}) {
    const rt::RtResult& r = m->mid.res;
    t.row({std::to_string(workers), m == &base ? "mutex" : "lock-free",
           std::to_string(r.shards_used), Table::count(r.granules_executed),
           fixed(m->lpg, 4), fixed(m->hold, 1), Table::count(r.shard_ring_pops),
           Table::count(r.shard_ring_pop_empty),
           Table::count(r.shard_ring_push_full),
           Table::count(r.shard_ring_cas_retries), Table::pct(m->util, 1),
           fixed(static_cast<double>(r.wall.count()) / 1e6, 1)});
    const std::string config = "workers=" + std::to_string(workers) +
                               " batch=" + std::to_string(kBatch) + " engine=" +
                               (m == &base ? "mutex" : "lockfree");
    json.add("t12_lockfree", "total_locks_per_granule", m->lpg, config);
    json.add("t12_lockfree", "total_hold_ns_per_granule", m->hold, config);
    json.add("t12_lockfree", "rundown_utilization", m->util, config);
    json.add("t12_lockfree", "ring_pops",
             static_cast<double>(r.shard_ring_pops), config);
    json.add("t12_lockfree", "ring_push_full",
             static_cast<double>(r.shard_ring_push_full), config);
  }
  t.print(std::cout);

  // --- gate: warm-window heap traffic still at the T10 bar --------------------
  const SteadyState ss = steady_state_allocs_lockfree();
  const bool gate2 = ss.granules > 0 &&
                     ss.allocs_per_granule * bench::kT10RequiredReduction <=
                         bench::kT10PreReworkAllocsPerGranule;
  Table t2("T12b — lock-free warm window heap traffic (T10 discipline)");
  t2.header({"granules", "allocs/granule", "bytes/granule", "t10 bar"});
  t2.row({Table::count(ss.granules), fixed(ss.allocs_per_granule, 4),
          fixed(ss.bytes_per_granule, 1),
          fixed(bench::kT10PreReworkAllocsPerGranule /
                    bench::kT10RequiredReduction,
                4)});
  t2.print(std::cout);
  json.add("t12_lockfree", "steady_allocs_per_granule", ss.allocs_per_granule,
           "grain=16 batch=16 reverse-indirect fan=3 lockfree");

  // --- gate: warm acquire cost is O(taken), not O(buffer) ---------------------
  // The mutex engine's take_from erased from the front of a vector: each
  // single-assignment acquire paid O(resident buffer), so cost at depth 4096
  // ran away from cost at depth 64. The ring pop is O(taken); the ratio
  // between a deep and a shallow ring must stay flat.
  const double cost_shallow = warm_acquire_cost_ns(64);
  const double cost_deep = warm_acquire_cost_ns(4096);
  const double ratio = cost_shallow > 0.0 ? cost_deep / cost_shallow : 1e9;
  const bool gate3 = cost_shallow > 0.0 && ratio < 4.0;
  Table t3("T12c — warm single-assignment acquire vs resident ring depth");
  t3.header({"depth 64 ns", "depth 4096 ns", "ratio", "bound"});
  t3.row({fixed(cost_shallow, 1), fixed(cost_deep, 1), fixed(ratio, 2), "< 4"});
  t3.print(std::cout);
  json.add("t12_lockfree", "warm_acquire_ns_depth64", cost_shallow, "lockfree");
  json.add("t12_lockfree", "warm_acquire_ns_depth4096", cost_deep, "lockfree");

  const bool pass = gate1 && gate2 && gate3;
  std::printf(
      "\nacceptance at %u workers (medians of %d, up to %d attempts): combined "
      "locks/granule %.4f vs mutex baseline %.4f (need <), combined hold "
      "ns/granule %.1f vs %.1f (need <), rundown-window utilization %.1f%% vs "
      "%.1f%% (need >=): %s; warm allocs/granule %.4f vs bar %.4f (need <=): "
      "%s; acquire cost ratio %.2f (need < 4): %s => %s\n",
      workers, kReps, kAttempts, lf.lpg, base.lpg, lf.hold, base.hold,
      100.0 * lf.util, 100.0 * base.util, gate1 ? "PASS" : "FAIL",
      ss.allocs_per_granule,
      bench::kT10PreReworkAllocsPerGranule / bench::kT10RequiredReduction,
      gate2 ? "PASS" : "FAIL", ratio, gate3 ? "PASS" : "FAIL",
      pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
