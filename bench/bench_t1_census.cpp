// bench_t1_census — Experiment T1.
//
// Regenerates the paper's PAX/CASPER enablement-mapping census: how many of
// the 22 parallel computational phases (and 1188 lines of parallel code)
// admit each mapping class, the 68%/68% "easily overlapped" aggregate, and
// the >90% "extended effort" claim.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "casper/census.hpp"

int main() {
  using namespace pax;
  using namespace pax::casper;
  bench::print_banner(
      "T1 — enablement-mapping census",
      "6/9/4/2/1 of 22 phases; 266/551/262/78/31 of 1188 lines; 68% easy; "
      ">90% with extended effort");

  const CasperPipeline pipe = build_casper_pipeline();
  const Census census = take_census(pipe);
  census_table(pipe, census).print(std::cout);

  std::printf(
      "\nClassification is computed by infer_mapping() over each phase's\n"
      "declared array accesses, honouring inter-phase serial actions, not\n"
      "read from pipeline metadata (tests cross-check the two agree).\n");

  // Per-transition detail, the way the paper discusses individual cases.
  Table detail("per-transition classification");
  detail.header({"current phase", "next phase", "mapping", "lines", "serial?"});
  for (std::size_t i = 0; i < pipe.info.size(); ++i) {
    const std::size_t next = (i + 1) % pipe.info.size();
    const auto& cur = pipe.info[i];
    detail.row({cur.name, pipe.info[next].name, to_string(cur.to_next),
                std::to_string(cur.lines),
                cur.serial_after
                    ? (cur.serial_conflicts ? "conflicting" : "hoistable")
                    : "-"});
  }
  detail.print(std::cout);
  return 0;
}
