// bench_t6_handoff — Experiment T6.
//
// The executive is a serial resource; on the threaded runtime every worker
// interaction with it is a mutex round-trip. This bench measures how batched
// work handoff (RtConfig::batch) amortises that cost: executive lock
// acquisitions per granule and worker utilization, for batch sizes {1, 4,
// 16}, across worker counts. Végh et al.'s scaling figure-of-merit motivates
// reporting utilization as worker count grows; Acar/Charguéraud/Rainey call
// the per-task scheduling cost this batch amortises "work inflation".
//
// Exit status: non-zero when batch=16 fails to cut lock acquisitions per
// granule by at least 2x against batch=1, or when granule counts differ
// (the acceptance gate for the batched-handoff change).
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <thread>

#include "bench_util.hpp"
#include "runtime/threaded_runtime.hpp"

namespace {

using namespace pax;

/// Three-phase identity pipeline looped `iters` times — the RtStress shape,
/// with a small spin per granule so bodies dominate neither totally nor not
/// at all (the handoff cost must be visible but the run must still finish in
/// benchmark time).
PhaseProgram make_loop_program(GranuleId n, int iters) {
  PhaseProgram prog;
  PhaseId a = prog.define_phase(make_phase("a", n).writes("A"));
  PhaseId b = prog.define_phase(make_phase("b", n).reads("A").writes("B"));
  PhaseId c = prog.define_phase(make_phase("c", n).reads("B").writes("C"));
  prog.serial("init", [](ProgramEnv& env) { env.set("i", 0); }, 0, false);
  const std::uint32_t top =
      prog.dispatch(a, {EnableClause{"b", MappingKind::kIdentity, {}}});
  prog.dispatch(b, {EnableClause{"c", MappingKind::kIdentity, {}}});
  prog.dispatch(c);
  prog.serial("inc", [](ProgramEnv& env) { env.add("i", 1); }, 0, false);
  prog.branch("loop",
              [iters](const ProgramEnv& env) {
                return env.get("i") < iters ? std::size_t{0} : std::size_t{1};
              },
              {top, static_cast<std::uint32_t>(prog.size() + 1)}, true);
  prog.halt();
  return prog;
}

rt::RtResult run_once(const PhaseProgram& prog, std::uint32_t workers,
                      std::uint32_t batch, std::atomic<std::uint64_t>& sink) {
  rt::BodyTable bodies;
  auto body = [&sink](GranuleRange r, WorkerId) {
    std::uint64_t acc = 0;
    for (GranuleId g = r.lo; g < r.hi; ++g)
      for (int i = 0; i < 400; ++i) acc += static_cast<std::uint64_t>(i) * g;
    sink.fetch_add(acc, std::memory_order_relaxed);
  };
  for (PhaseId p = 0; p < 3; ++p) bodies.set(p, body);
  ExecConfig cfg;
  cfg.grain = 4;
  cfg.early_serial = true;
  // Stealing off: T6 isolates what *batching* buys on the serial handoff;
  // the decentralized layer on top is T8's experiment (bench_t8_steal).
  rt::RtConfig rc;
  rc.workers = workers;
  rc.batch = batch;
  rc.steal = false;
  rc.adaptive_grain = false;
  rc.shards = 1;  // single-lock protocol: this bench isolates batching alone
  rt::ThreadedRuntime runtime(prog, cfg, CostModel::free_of_charge(), bodies, rc);
  return runtime.run();
}

double locks_per_granule(const rt::RtResult& r) {
  return static_cast<double>(r.exec_lock_acquisitions) /
         static_cast<double>(r.granules_executed);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pax;
  using namespace pax::bench;
  JsonReport json = JsonReport::from_args(argc, argv);
  print_banner("T6 — batched executive work handoff",
               "retiring and pulling several task descriptors per executive "
               "critical section amortises the serial-executive lock over the "
               "rundown without changing what executes");

  const GranuleId n = 2048;
  const int iters = 4;
  const PhaseProgram prog = make_loop_program(n, iters);
  std::atomic<std::uint64_t> sink{0};

  const auto hw = std::max(2u, std::min(16u, std::thread::hardware_concurrency()));
  bool pass = true;
  double gate_ratio = 0.0;

  Table t("T6 — lock round-trips and utilization vs batch size");
  t.header({"workers", "batch", "granules", "locks", "locks/granule",
            "utilization", "wall ms"});
  std::vector<std::uint32_t> worker_counts{2u, hw / 2, hw};
  std::sort(worker_counts.begin(), worker_counts.end());
  worker_counts.erase(std::unique(worker_counts.begin(), worker_counts.end()),
                      worker_counts.end());
  for (std::uint32_t workers : worker_counts) {
    if (workers == 0) continue;
    double base_lpg = 0.0;
    std::uint64_t base_granules = 0;
    for (std::uint32_t batch : {1u, 4u, 16u}) {
      const rt::RtResult r = run_once(prog, workers, batch, sink);
      const double lpg = locks_per_granule(r);
      if (batch == 1) {
        base_lpg = lpg;
        base_granules = r.granules_executed;
      }
      if (batch == 16) {
        const double ratio = base_lpg / lpg;
        if (workers == hw) gate_ratio = ratio;
        if (ratio < 2.0 || r.granules_executed != base_granules) pass = false;
      }
      const std::string config =
          "workers=" + std::to_string(workers) + " batch=" + std::to_string(batch);
      json.add("t6_handoff", "locks_per_granule", lpg, config);
      json.add("t6_handoff", "utilization", r.utilization(), config);
      t.row({std::to_string(workers), std::to_string(batch),
             Table::count(r.granules_executed),
             Table::count(r.exec_lock_acquisitions), fixed(lpg, 4),
             Table::pct(r.utilization(), 1),
             fixed(static_cast<double>(r.wall.count()) / 1e6, 1)});
    }
  }
  t.print(std::cout);

  std::printf(
      "\nbatch=1 is the classic one-descriptor-per-critical-section protocol;\n"
      "each worker then pays ~1/grain lock round-trips per granule. batch=16\n"
      "retires and refills 16 descriptors per round-trip, so the executive\n"
      "mutex stops being the rundown's serial bottleneck. Granule counts are\n"
      "identical across batch sizes: batching changes handoff, not work.\n\n");
  std::printf("acceptance: batch16 lock reduction at %u workers = %.1fx "
              "(need >= 2x, identical granules): %s\n",
              hw, gate_ratio, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
