// bench_t2_task_ratio — Experiment T2.
//
// The paper: "it can be observed that the number of tasks should
// substantially outnumber the number of processors. Certainly, there should
// be at the outset of the current-phase work at least two tasks for each
// processor so that at least one task execution time will be available to
// process the completion of the first task assigned to the processor and to
// schedule the enabled next-phase task."
//
// We sweep tasks-per-processor and report barrier vs overlap makespan and
// the overlap benefit; below ~2 tasks/processor the enablement machinery has
// no slack to hide in and the benefit collapses (while mgmt load grows).
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace pax;
  using namespace pax::bench;
  print_banner("T2 — tasks-per-processor rule",
               "at least two tasks per processor at phase outset");

  constexpr std::uint32_t kWorkers = 64;
  constexpr GranuleId kGrain = 4;
  const double ratios[] = {1.0, 1.5, 2.0, 3.0, 4.0, 8.0, 16.0};

  Table t("T2 — overlap benefit vs tasks per processor (identity mapping)");
  t.header({"tasks/proc", "tasks/phase", "barrier", "overlap", "benefit",
            "exec busy", "mgmt ratio"});

  for (double r : ratios) {
    const auto tasks =
        static_cast<GranuleId>(r * static_cast<double>(kWorkers) + 0.5);
    const GranuleId granules = tasks * kGrain;
    TwoPhase tp = two_phase(granules, granules, MappingKind::kIdentity);

    sim::Workload wl(23);
    sim::PhaseWorkload pw;
    pw.model = sim::DurationModel::kUniform;
    pw.mean = 500;
    pw.spread = 250;
    wl.set_phase(tp.a, pw);
    wl.set_phase(tp.b, pw);

    sim::MachineConfig mc;
    mc.workers = kWorkers;
    mc.record_intervals = false;

    ExecConfig barrier;
    barrier.overlap = false;
    barrier.grain = kGrain;
    ExecConfig overlap = barrier;
    overlap.overlap = true;

    const auto r_b = sim::simulate(tp.program, barrier, CostModel{}, wl, mc);
    const auto r_o = sim::simulate(tp.program, overlap, CostModel{}, wl, mc);
    const double exec_frac = static_cast<double>(r_o.exec_ticks) /
                             static_cast<double>(r_o.makespan);
    t.row({fixed(r, 1), Table::count(tasks), Table::count(r_b.makespan),
           Table::count(r_o.makespan),
           Table::pct(1.0 - static_cast<double>(r_o.makespan) /
                                static_cast<double>(r_b.makespan),
                      1),
           Table::pct(exec_frac, 1), fixed(r_o.mgmt_ratio(), 0)});
  }
  t.print(std::cout);
  std::printf(
      "\n'benefit' = makespan reduction from overlap. The completion/"
      "enablement/scheduling\ncycle hides inside task execution once tasks "
      "outnumber processors ~2x, as the paper\nargues; far above that, "
      "rundown is a vanishing fraction and the benefit shrinks again.\n");
  return 0;
}
