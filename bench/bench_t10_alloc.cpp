// bench_t10_alloc — Experiment T10.
//
// PRs 1-4 decontended the executive (batching, stealing, sharding); this
// bench gates the layer below all of them: the control plane's *heap
// traffic*. The rundown analysis says utilization dies when per-granule
// management cost grows against shrinking task cost, and the work-inflation
// results of Acar et al. locate much of that inflation in allocator traffic
// and memory effects inside the scheduler. After the arena/workspace rework
// (DESIGN.md §10) the steady-state worker protocol performs no heap
// allocation at all; this binary links the counting operator new/delete
// hooks (common/alloc_stats.hpp) and holds the claim to numbers.
//
// Gates (exit non-zero on failure):
//   1. Steady-state allocations per granule on the single-threaded executive
//      hot path (scattered reverse-indirect workload, grain 16, batch 16),
//      measured deterministically over a warm window: must be at least 10x
//      below the pre-rework baseline of ~0.123 allocs/granule (measured on
//      the PR 4 tree with this exact workload) — in practice it is ~0.003,
//      all of it residual high-water growth, with long-run windows at zero.
//   2. Control-plane ns/granule no worse than the T9 protocol: the T9
//      workload at the full worker count must still hold sharded
//      acquire-to-release hold time per granule strictly below the 1-shard
//      baseline (medians of 3, up to 4 attempts, interleaved) — i.e. the
//      allocation discipline did not tax the path T9 optimised.
//
// Reported alongside: bytes/granule, threaded allocs/granule for both shard
// modes (RtResult::heap_allocs; process-wide, so worker threads count).
#define PAX_ALLOC_STATS_IMPLEMENT
#include "common/alloc_stats.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "runtime/threaded_runtime.hpp"

namespace {

using namespace pax;
using pax::bench::fixed;
using pax::bench::spin;

// --- gate 1: deterministic steady-state allocs/granule ----------------------

/// Pre-rework baseline for this exact workload, measured on the PR 4 tree
/// (per-ticket `newly` vectors, per-batch DeferredEnable tables, coalesce
/// temporaries): 0.123 allocs per granule in the same warm window. Shared
/// via bench_util so bench_t12_lockfree holds the rings to the same bar.
constexpr double kPreReworkAllocsPerGranule =
    pax::bench::kT10PreReworkAllocsPerGranule;
constexpr double kRequiredReduction = pax::bench::kT10RequiredReduction;

struct SteadyState {
  double allocs_per_granule = 0.0;
  double bytes_per_granule = 0.0;
  std::uint64_t granules = 0;
};

SteadyState steady_state_allocs() {
  const GranuleId n = 200000;
  PhaseProgram prog;
  prog.define_phase(make_phase("a", n).writes("X"));
  prog.define_phase(make_phase("b", n).reads("X").writes("Y"));
  EnableClause clause{"b", MappingKind::kReverseIndirect, {}};
  clause.indirection.requires_of = [n](GranuleId r, std::vector<GranuleId>& out) {
    out.insert(out.end(), {r, (r * 7 + 3) % n, (r * 13 + 11) % n});
  };
  prog.dispatch(0, {clause});
  prog.dispatch(1);
  prog.halt();

  ExecConfig cfg;
  cfg.grain = 16;
  cfg.defer_map_build = false;
  ExecutiveCore core(prog, cfg, CostModel::free_of_charge());
  core.start();

  std::vector<Assignment> out;
  out.reserve(32);
  std::vector<Ticket> done;
  done.reserve(32);
  SteadyState res;
  std::uint64_t measured_allocs = 0, measured_bytes = 0;
  int cycles = 0;
  while (!core.finished()) {
    out.clear();
    done.clear();
    const AllocTotals t0 = alloc_stats::thread_totals();
    if (core.request_work_batch(0, 16, out) == 0) {
      if (!core.idle_work()) break;
      continue;
    }
    for (const Assignment& a : out) done.push_back(a.ticket);
    core.complete_batch(done);
    ++cycles;
    // Warm window: skip the first 500 cycles (map build, pool/range-set
    // high-water growth) exactly as the pre-rework baseline run did.
    if (cycles > 500) {
      const AllocTotals d = alloc_stats::delta(t0, alloc_stats::thread_totals());
      measured_allocs += d.allocs;
      measured_bytes += d.bytes;
      for (const Assignment& a : out) res.granules += a.range.size();
    }
  }
  if (res.granules > 0) {
    res.allocs_per_granule =
        static_cast<double>(measured_allocs) / static_cast<double>(res.granules);
    res.bytes_per_granule =
        static_cast<double>(measured_bytes) / static_cast<double>(res.granules);
  }
  return res;
}

// --- gate 2: the T9 protocol with the allocation-free control plane ---------
// The workload, knobs and run harness are bench_util's shared T9 protocol
// definition — the same one bench_t9_shard gates — so the "no worse than T9"
// comparison can never drift onto a different workload.

constexpr std::uint64_t kTotal = pax::bench::kT9Total;
constexpr std::uint32_t kBatch = pax::bench::kT9Batch;

rt::RtResult run_once(std::uint32_t workers, std::uint32_t shards) {
  // Default (lock-free) engine on purpose: this gate polices the SHIPPED
  // warm path's heap traffic, whatever engine ships. The mutex baseline is
  // pinned where it is the measured object (bench_t9_shard, and the
  // baseline arm of bench_t12_lockfree).
  return pax::bench::run_t9_protocol(workers, shards);
}

double hold_ns_per_granule(const rt::RtResult& r) {
  return static_cast<double>(r.exec_lock_hold_ns) /
         static_cast<double>(r.granules_executed);
}

double allocs_per_granule(const rt::RtResult& r) {
  return static_cast<double>(r.heap_allocs) /
         static_cast<double>(r.granules_executed);
}

struct ModeMetrics {
  double hold = 0.0;    // control-lock hold ns / granule (median of reps)
  double allocs = 0.0;  // heap allocs / granule (median of reps)
  rt::RtResult mid;     // hold-median repetition, for table rows
  bool granules_ok = true;
};

ModeMetrics metrics_of(std::vector<rt::RtResult> reps) {
  ModeMetrics m;
  for (const rt::RtResult& r : reps)
    if (r.granules_executed != kTotal) m.granules_ok = false;
  std::sort(reps.begin(), reps.end(),
            [](const rt::RtResult& x, const rt::RtResult& y) {
              return allocs_per_granule(x) < allocs_per_granule(y);
            });
  m.allocs = allocs_per_granule(reps[reps.size() / 2]);
  std::sort(reps.begin(), reps.end(),
            [](const rt::RtResult& x, const rt::RtResult& y) {
              return hold_ns_per_granule(x) < hold_ns_per_granule(y);
            });
  m.hold = hold_ns_per_granule(reps[reps.size() / 2]);
  m.mid = std::move(reps[reps.size() / 2]);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pax;
  using namespace pax::bench;
  JsonReport json = JsonReport::from_args(argc, argv);
  print_banner("T10 — allocation-free control plane: arena + workspace",
               "per-granule management cost must not inflate with allocator "
               "traffic inside the scheduler; the steady-state worker "
               "protocol performs no heap allocation once warm");

  // --- gate 1 -----------------------------------------------------------------
  const SteadyState ss = steady_state_allocs();
  const double reduction = ss.allocs_per_granule > 0.0
                               ? kPreReworkAllocsPerGranule / ss.allocs_per_granule
                               : 1e9;
  const bool gate1 =
      ss.granules > 0 &&
      ss.allocs_per_granule * kRequiredReduction <= kPreReworkAllocsPerGranule;

  Table t1("T10a — single-threaded executive hot path (warm window)");
  t1.header({"granules", "allocs/granule", "bytes/granule", "pre-rework",
             "reduction"});
  t1.row({Table::count(ss.granules), fixed(ss.allocs_per_granule, 4),
          fixed(ss.bytes_per_granule, 1), fixed(kPreReworkAllocsPerGranule, 3),
          fixed(reduction, 1) + "x"});
  t1.print(std::cout);
  json.add("t10_alloc", "steady_allocs_per_granule", ss.allocs_per_granule,
           "grain=16 batch=16 reverse-indirect fan=3");
  json.add("t10_alloc", "steady_bytes_per_granule", ss.bytes_per_granule,
           "grain=16 batch=16 reverse-indirect fan=3");

  // --- gate 2 -----------------------------------------------------------------
  const std::uint32_t workers =
      std::max(8u, std::min(16u, std::thread::hardware_concurrency()));
  json.set_meta("workers", workers);
  json.set_meta("batch", kBatch);
  json.set_meta("shards", "1 vs auto");
  constexpr int kReps = 3;
  constexpr int kAttempts = 4;  // whole-measurement retries against host noise

  bool gate2 = false;
  ModeMetrics base, shard;
  for (int attempt = 0; attempt < kAttempts && !gate2; ++attempt) {
    // Interleave the repetitions (b,s,b,s,...) so slow host-load drift hits
    // both modes evenly instead of biasing whichever ran last.
    std::vector<rt::RtResult> base_reps, shard_reps;
    for (int i = 0; i < kReps; ++i) {
      base_reps.push_back(run_once(workers, /*shards=*/1));
      shard_reps.push_back(run_once(workers, kAutoShards));
    }
    base = metrics_of(std::move(base_reps));
    shard = metrics_of(std::move(shard_reps));
    gate2 = base.granules_ok && shard.granules_ok && shard.hold < base.hold;
  }

  Table t2("T10b — T9 workload, allocation-free control plane");
  t2.header({"workers", "mode", "shards", "granules", "hold ns/g",
             "allocs/g", "heap bytes", "wall ms"});
  for (const ModeMetrics* m : {&base, &shard}) {
    const rt::RtResult& r = m->mid;
    t2.row({std::to_string(workers), m == &base ? "1-shard" : "sharded",
            std::to_string(r.shards_used), Table::count(r.granules_executed),
            fixed(m->hold, 1), fixed(m->allocs, 4), Table::count(r.heap_bytes),
            fixed(static_cast<double>(r.wall.count()) / 1e6, 1)});
    const std::string config = "workers=" + std::to_string(workers) +
                               " batch=" + std::to_string(kBatch) +
                               " shards=" + std::to_string(r.shards_used);
    json.add("t10_alloc", "lock_hold_ns_per_granule", m->hold, config);
    json.add("t10_alloc", "threaded_allocs_per_granule", m->allocs, config);
  }
  t2.print(std::cout);

  const bool pass = gate1 && gate2;
  std::printf(
      "\nacceptance: steady-state allocs/granule %.4f vs pre-rework %.3f "
      "(need >= %.0fx reduction, got %.1fx): %s; T9-protocol hold ns/granule "
      "%.1f vs 1-shard %.1f at %u workers (medians of %d, up to %d attempts, "
      "need <): %s => %s\n",
      ss.allocs_per_granule, kPreReworkAllocsPerGranule, kRequiredReduction,
      reduction, gate1 ? "PASS" : "FAIL", shard.hold, base.hold, workers, kReps,
      kAttempts, gate2 ? "PASS" : "FAIL", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
