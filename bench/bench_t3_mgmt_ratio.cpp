// bench_t3_mgmt_ratio — Experiment T3.
//
// The paper: "Operational experience shows that the ratio of computation to
// management has been running at something in the neighborhood of 200."
//
// We run the synthetic CASPER pipeline and sweep the task grain; the
// computation:management ratio scales with grain (fewer, larger tasks per
// management cycle). The default cost model is calibrated so that a
// plausible mid-size grain lands in the paper's neighbourhood of 200.
#include <iostream>

#include "bench_util.hpp"
#include "casper/pipeline.hpp"

int main() {
  using namespace pax;
  using namespace pax::bench;
  print_banner("T3 — computation : management ratio",
               "\"the ratio of computation to management has been running at "
               "something in the neighborhood of 200\"");

  const casper::CasperPipeline pipe = casper::build_casper_pipeline();
  sim::MachineConfig mc;
  mc.workers = 32;
  mc.record_intervals = false;

  Table t("T3 — CASPER pipeline, grain sweep (overlap on)");
  t.header({"grain", "tasks", "makespan", "utilization", "exec ticks",
            "comp:mgmt ratio"});
  for (GranuleId grain : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    ExecConfig cfg;
    cfg.grain = grain;
    cfg.overlap = true;
    cfg.early_serial = true;
    cfg.indirect_subset = 64;
    const auto res = sim::simulate(pipe.program, cfg, CostModel{}, pipe.workload, mc);
    t.row({std::to_string(grain), Table::count(res.tasks_executed),
           Table::count(res.makespan), Table::pct(res.utilization(), 1),
           Table::count(res.exec_ticks), fixed(res.mgmt_ratio(), 1)});
  }
  t.print(std::cout);

  // Where does management time go? Break the ledger down at grain 8.
  ExecConfig cfg;
  cfg.grain = 8;
  cfg.overlap = true;
  cfg.early_serial = true;
  cfg.indirect_subset = 64;
  const auto res = sim::simulate(pipe.program, cfg, CostModel{}, pipe.workload, mc);
  Table l("management-operation ledger at grain 8");
  l.header({"operation", "count", "ticks", "% of mgmt"});
  for (std::size_t i = 0; i < kMgmtOpCount; ++i) {
    const auto op = static_cast<MgmtOp>(i);
    if (res.ledger.count(op) == 0 && res.ledger.units(op) == 0) continue;
    l.row({to_string(op), Table::count(res.ledger.count(op)),
           Table::count(res.ledger.units(op)),
           Table::pct(static_cast<double>(res.ledger.units(op)) /
                          static_cast<double>(res.ledger.total_units()),
                      1)});
  }
  std::cout << '\n';
  l.print(std::cout);
  return 0;
}
