// bench_f2_mapping_utilization — Experiment F2.
//
// For each enablement-mapping class, utilization in the rundown window of
// the first phase and end-to-end makespan, barrier vs overlap. Shows who
// can be kept busy during computational rundown, by mapping kind, plus the
// elevate-released ablation (design decision #4 in DESIGN.md).
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace pax;
  using namespace pax::bench;
  JsonReport json = JsonReport::from_args(argc, argv);
  print_banner("F2 — rundown utilization by enablement mapping",
               "overlapping keeps computing resources busy during each "
               "computational rundown (except null mappings)");

  constexpr std::uint32_t kWorkers = 64;
  constexpr GranuleId kGrain = 4;
  constexpr GranuleId kGranules = 768;  // 3 tasks/processor at grain 4
  json.set_meta("workers", kWorkers);
  json.set_meta("granules_per_phase", kGranules);
  sim::MachineConfig mc;
  mc.workers = kWorkers;

  sim::PhaseWorkload pw;
  pw.model = sim::DurationModel::kUniform;
  pw.mean = 2000;
  pw.spread = 1000;

  struct Case {
    const char* label;
    MappingKind kind;
    bool serial = false;
    bool conflicts = false;
  };
  const Case cases[] = {
      {"universal", MappingKind::kUniversal},
      {"identity", MappingKind::kIdentity},
      {"reverse-indirect", MappingKind::kReverseIndirect},
      {"forward-indirect", MappingKind::kForwardIndirect},
      {"null (serial between)", MappingKind::kIdentity, true, true},
  };

  Table t("F2 — phase-1 rundown-window utilization and makespan");
  t.header({"mapping", "barrier tail", "overlap tail", "barrier makespan",
            "overlap makespan", "speedup"});

  for (const Case& c : cases) {
    TwoPhase tp = two_phase(kGranules, kGranules, c.kind, /*fan=*/4,
                            /*stable=*/true, c.serial, c.conflicts);
    sim::Workload wl(17);
    wl.set_phase(tp.a, pw);
    wl.set_phase(tp.b, pw);

    ExecConfig barrier;
    barrier.overlap = false;
    barrier.grain = kGrain;
    ExecConfig overlap = barrier;
    overlap.overlap = true;

    const auto r_b = sim::simulate(tp.program, barrier, CostModel{}, wl, mc);
    const auto r_o = sim::simulate(tp.program, overlap, CostModel{}, wl, mc);
    const std::string config = std::string("mapping=") + c.label;
    json.add("f2_mapping", "barrier_tail_utilization",
             rundown_utilization(r_b, tp.a), config);
    json.add("f2_mapping", "overlap_tail_utilization",
             rundown_utilization(r_o, tp.a), config);
    json.add("f2_mapping", "speedup",
             static_cast<double>(r_b.makespan) / static_cast<double>(r_o.makespan),
             config);
    t.row({c.label, Table::pct(rundown_utilization(r_b, tp.a), 1),
           Table::pct(rundown_utilization(r_o, tp.a), 1),
           Table::count(r_b.makespan), Table::count(r_o.makespan),
           fixed(static_cast<double>(r_b.makespan) /
                     static_cast<double>(r_o.makespan),
                 3) +
               "x"});
  }
  t.print(std::cout);

  // Ablation: elevating released successor work ahead of current work makes
  // the phases interleave and forfeits the tail fill.
  {
    TwoPhase tp = two_phase(kGranules, kGranules, MappingKind::kIdentity);
    sim::Workload wl(17);
    wl.set_phase(tp.a, pw);
    wl.set_phase(tp.b, pw);
    ExecConfig cfg;
    cfg.grain = kGrain;
    ExecConfig elev = cfg;
    elev.elevate_released = true;
    const auto r_n = sim::simulate(tp.program, cfg, CostModel{}, wl, mc);
    const auto r_e = sim::simulate(tp.program, elev, CostModel{}, wl, mc);
    Table a("ablation — priority of released successor work (identity)");
    a.header({"policy", "makespan", "phase-1 completion", "utilization"});
    a.row({"released -> normal queue (PAX)", Table::count(r_n.makespan),
           Table::count(r_n.phase_completion(tp.a)),
           Table::pct(r_n.utilization(), 1)});
    a.row({"released -> elevated", Table::count(r_e.makespan),
           Table::count(r_e.phase_completion(tp.a)),
           Table::pct(r_e.utilization(), 1)});
    std::cout << '\n';
    a.print(std::cout);
  }
  return 0;
}
