// bench_f3_variance — Experiment F3.
//
// The paper motivates dynamic overlap with CASPER's behaviour: computations
// "could not even be ascribed with definite execution times" and sometimes
// "whether or not the computation was even to be carried out ... was a
// conditional part of the algorithm". The more uncertain the task times,
// the longer the straggler tail of each phase — and the more overlap buys.
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"

int main(int argc, char** argv) {
  using namespace pax;
  using namespace pax::bench;
  JsonReport json = JsonReport::from_args(argc, argv);
  print_banner("F3 — overlap benefit vs execution-time uncertainty",
               "unpredictable/conditional task times make rundown worse and "
               "dynamic overlap more valuable");

  constexpr std::uint32_t kWorkers = 64;
  constexpr GranuleId kGranules = 512;  // 2 tasks/processor at grain 4
  json.set_meta("workers", kWorkers);
  json.set_meta("granules_per_phase", kGranules);

  struct Case {
    const char* label;
    sim::PhaseWorkload w;
  };
  std::vector<Case> cases;
  {
    sim::PhaseWorkload w;
    w.model = sim::DurationModel::kFixed;
    w.mean = 400;
    cases.push_back({"fixed (checkerboard-like)", w});
    w.model = sim::DurationModel::kUniform;
    w.spread = 100;
    cases.push_back({"uniform +/-25%", w});
    w.spread = 300;
    cases.push_back({"uniform +/-75%", w});
    w.model = sim::DurationModel::kExponential;
    w.spread = 0;
    cases.push_back({"exponential (indefinite)", w});
    w.model = sim::DurationModel::kBimodal;
    w.spread = 3600;  // 10% of tasks take 10x
    w.bimodal_p = 0.1;
    cases.push_back({"bimodal 10% x10", w});
    w.model = sim::DurationModel::kFixed;
    w.spread = 0;
    w.skip_probability = 0.4;
    cases.push_back({"conditional (40% skipped)", w});
  }

  Table t("F3 — identity two-phase, barrier vs overlap");
  t.header({"duration model", "cv", "barrier", "overlap", "benefit",
            "barrier tail util", "overlap tail util"});
  for (const Case& c : cases) {
    TwoPhase tp = two_phase(kGranules, kGranules, MappingKind::kIdentity);
    sim::Workload wl(31);
    wl.set_phase(tp.a, c.w);
    wl.set_phase(tp.b, c.w);

    // Coefficient of variation of the granule durations, measured.
    Accumulator acc;
    for (GranuleId g = 0; g < kGranules; ++g)
      acc.add(static_cast<double>(wl.granule_duration(tp.a, g)));

    sim::MachineConfig mc;
    mc.workers = kWorkers;

    ExecConfig barrier;
    barrier.overlap = false;
    barrier.grain = 4;
    ExecConfig overlap = barrier;
    overlap.overlap = true;

    const auto r_b = sim::simulate(tp.program, barrier, CostModel{}, wl, mc);
    const auto r_o = sim::simulate(tp.program, overlap, CostModel{}, wl, mc);
    const std::string config = std::string("model=") + c.label;
    json.add("f3_variance", "benefit",
             1.0 - static_cast<double>(r_o.makespan) /
                       static_cast<double>(r_b.makespan),
             config);
    json.add("f3_variance", "cv", acc.stddev() / acc.mean(), config);
    t.row({c.label, fixed(acc.stddev() / acc.mean(), 2),
           Table::count(r_b.makespan), Table::count(r_o.makespan),
           Table::pct(1.0 - static_cast<double>(r_o.makespan) /
                                static_cast<double>(r_b.makespan),
                      1),
           Table::pct(rundown_utilization(r_b, tp.a), 1),
           Table::pct(rundown_utilization(r_o, tp.a), 1)});
  }
  t.print(std::cout);
  return 0;
}
