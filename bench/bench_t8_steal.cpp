// bench_t8_steal — Experiment T8.
//
// PR 1 batched the executive handoff; this bench gates the next layer down:
// decentralized dispatch (DESIGN.md §8). Per-worker local run-queues let a
// worker over-refill beyond the retire batch, and rundown work stealing
// rebalances the surplus when the executive runs dry — so the serial
// executive is touched less per granule *and* the tail workers stay busy
// through the rundown window instead of sleeping on the executive mutex.
//
// Workload: a two-phase identity program whose granule cost ramps up with
// granule id, so the final refills hold the most expensive work — without
// stealing, whoever pulled the last fat batch grinds through it alone while
// every peer idles (the utilization collapse the paper opens with, recreated
// at the dispatch layer). Baseline is the PR 1 batch-16 protocol on the
// identical machinery (steal off, queue capacity = batch).
//
// Exit status: non-zero when, at the full worker count, the steal
// configuration fails to cut executive-lock acquisitions per granule below
// the batch-16 baseline, or fails to hold rundown-window utilization (the
// final 10% of granules) at >= the no-steal baseline, or granule counts
// drift (medians of 3 repetitions).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "runtime/threaded_runtime.hpp"

namespace {

using namespace pax;

constexpr GranuleId kN = 4096;       // granules per phase
constexpr std::uint64_t kTotal = 2ull * kN;
constexpr std::uint32_t kGrain = 32;
constexpr std::uint32_t kBatch = 16;

using pax::bench::RundownProbe;
using pax::bench::spin;

struct RunOut {
  rt::RtResult res;
  double rundown_util = 0.0;
};

RunOut run_once(std::uint32_t workers, bool steal) {
  PhaseProgram prog;
  const PhaseId a = prog.define_phase(make_phase("a", kN).writes("A"));
  const PhaseId b = prog.define_phase(make_phase("b", kN).reads("A").writes("B"));
  prog.dispatch(a, {EnableClause{"b", MappingKind::kIdentity, {}}});
  prog.dispatch(b);
  prog.halt();

  RundownProbe probe(kTotal);
  rt::BodyTable bodies;
  auto body = [&probe](GranuleRange r, WorkerId) {
    const auto t0 = std::chrono::steady_clock::now();
    for (GranuleId g = r.lo; g < r.hi; ++g)
      spin(1500 + static_cast<std::uint32_t>(g) * 2);  // cost ramps ~6x
    probe.on_body(t0, std::chrono::steady_clock::now(), r.size());
  };
  bodies.set(a, body);
  bodies.set(b, body);

  ExecConfig cfg;
  cfg.grain = kGrain;
  rt::RtConfig rc;
  rc.workers = workers;
  rc.batch = kBatch;
  rc.steal = steal;
  rc.adaptive_grain = steal;
  rc.shards = 1;  // single-lock protocol: this bench isolates the steal layer
  // steal off keeps queue_capacity = batch: the PR 1 batch-16 protocol.
  rt::ThreadedRuntime runtime(prog, cfg, CostModel::free_of_charge(), bodies, rc);
  RunOut out;
  out.res = runtime.run();
  out.rundown_util = probe.window_utilization(workers);
  return out;
}

double locks_per_granule(const rt::RtResult& r) {
  return static_cast<double>(r.exec_lock_acquisitions) /
         static_cast<double>(r.granules_executed);
}

/// Median of three repetitions by the given key.
template <typename Key>
const RunOut& median_by(std::vector<RunOut>& reps, Key key) {
  std::sort(reps.begin(), reps.end(),
            [&](const RunOut& x, const RunOut& y) { return key(x) < key(y); });
  return reps[reps.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pax;
  using namespace pax::bench;
  JsonReport json = JsonReport::from_args(argc, argv);
  print_banner("T8 — decentralized dispatch: local run-queues + rundown stealing",
               "pushing dispatch out of the serial executive into per-worker "
               "queues keeps tail workers busy through the rundown without "
               "extra executive round-trips");

  const auto hw = std::max(2u, std::min(16u, std::thread::hardware_concurrency()));
  constexpr int kReps = 3;

  Table t("T8 — PR 1 batch-16 baseline vs local queues + stealing");
  t.header({"workers", "mode", "granules", "locks/granule", "refill", "wait",
            "steals", "rundown util", "wall ms"});

  bool pass = true;
  double gate_lpg_base = 0.0, gate_lpg_steal = 0.0;
  double gate_util_base = 0.0, gate_util_steal = 0.0;

  std::vector<std::uint32_t> worker_counts{2u, hw};
  worker_counts.erase(std::unique(worker_counts.begin(), worker_counts.end()),
                      worker_counts.end());
  for (std::uint32_t workers : worker_counts) {
    for (bool steal : {false, true}) {
      std::vector<RunOut> reps;
      for (int i = 0; i < kReps; ++i) reps.push_back(run_once(workers, steal));
      // Granule drift fails the gate on EVERY repetition, not just the
      // median ones the metrics are read from.
      for (const RunOut& r : reps)
        if (r.res.granules_executed != kTotal) pass = false;
      // Medians: locks/granule is deterministic-ish, utilization is noisy.
      const double lpg =
          locks_per_granule(median_by(reps, [](const RunOut& r) {
                              return locks_per_granule(r.res);
                            }).res);
      const RunOut& mid =
          median_by(reps, [](const RunOut& r) { return r.rundown_util; });
      const double util = mid.rundown_util;

      if (workers == hw) {
        (steal ? gate_lpg_steal : gate_lpg_base) = lpg;
        (steal ? gate_util_steal : gate_util_base) = util;
      }
      const std::string config = "workers=" + std::to_string(workers) +
                                 " batch=" + std::to_string(kBatch) +
                                 (steal ? " steal=on" : " steal=off");
      json.add("t8_steal", "locks_per_granule", lpg, config);
      json.add("t8_steal", "rundown_utilization", util, config);
      json.add("t8_steal", "steals", static_cast<double>(mid.res.steals), config);

      t.row({std::to_string(workers), steal ? "steal" : "batch16",
             Table::count(mid.res.granules_executed), fixed(lpg, 4),
             Table::count(mid.res.refill_lock_acquisitions),
             Table::count(mid.res.wait_lock_acquisitions),
             Table::count(mid.res.steals), Table::pct(util, 1),
             fixed(static_cast<double>(mid.res.wall.count()) / 1e6, 1)});
    }
  }
  t.print(std::cout);

  // --- the same design in the discrete-event model ---------------------------
  {
    Table s("T8b — simulator: decentralized pop vs serial executive (64 workers)");
    s.header({"mode", "makespan", "steals", "steal ticks", "exec ticks",
              "utilization"});
    const TwoPhase tp = two_phase(4096, 4096, MappingKind::kIdentity);
    ExecConfig cfg;
    cfg.grain = 1;  // management-bound on purpose: every pop is a round-trip
    sim::Workload wl(7);
    sim::PhaseWorkload pw;
    pw.model = sim::DurationModel::kFixed;
    pw.mean = 120;
    wl.set_phase(0, pw);
    wl.set_phase(1, pw);
    for (bool steal : {false, true}) {
      sim::MachineConfig mc;
      mc.workers = 64;
      mc.record_intervals = false;
      mc.steal = steal;
      const sim::SimResult r = sim::simulate(tp.program, cfg, CostModel{}, wl, mc);
      json.add("t8_steal", "sim_makespan", static_cast<double>(r.makespan),
               steal ? "sim steal=on" : "sim steal=off");
      s.row({steal ? "steal" : "serial", Table::count(r.makespan),
             Table::count(r.steals), Table::count(r.steal_ticks),
             Table::count(r.exec_ticks), Table::pct(r.utilization(), 1)});
    }
    s.print(std::cout);
    std::printf(
        "\nwith stealing, a worker whose executive is contended pops its next\n"
        "assignment itself (a kSteal charge of worker time) instead of queueing\n"
        "on the serial executive — the simulator's rendering of the same\n"
        "decentralization the threaded table above measures.\n");
  }

  const bool lpg_ok = gate_lpg_steal < gate_lpg_base;
  const bool util_ok = gate_util_steal >= gate_util_base;
  if (!lpg_ok || !util_ok) pass = false;
  std::printf(
      "\nacceptance at %u workers (medians of %d): locks/granule %.4f vs "
      "baseline %.4f (need <), rundown-window utilization %.1f%% vs baseline "
      "%.1f%% (need >=): %s\n",
      hw, kReps, gate_lpg_steal, gate_lpg_base, 100.0 * gate_util_steal,
      100.0 * gate_util_base, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
