// bench_util.hpp — shared builders for the experiment harness.
//
// Each bench binary regenerates one quantitative claim of the paper (see
// DESIGN.md §4 and the README bench matrix). The helpers here build canonical
// two-phase programs for every mapping kind and run them on the simulator.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "common/table.hpp"
#include "core/executive.hpp"
#include "runtime/threaded_runtime.hpp"
#include "sim/machine.hpp"

namespace pax::bench {

/// Per-run rundown instrumentation shared by the T8/T9 gates (one metric
/// definition, so the two gates can never silently diverge): bodies count
/// retired granules; whoever crosses the 90% threshold stamps t90, and
/// every body ending after t90 adds its overlap with [t90, end] to the
/// window busy time.
class RundownProbe {
 public:
  explicit RundownProbe(std::uint64_t total_granules)
      : threshold_(total_granules - total_granules / 10) {}

  void on_body(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1, std::uint64_t granules) {
    const std::int64_t end = ns_of(t1);
    const std::uint64_t before = done_.fetch_add(granules, std::memory_order_acq_rel);
    if (before < threshold_ && before + granules >= threshold_) {
      std::int64_t expected = 0;
      t90_ns_.compare_exchange_strong(expected, end, std::memory_order_acq_rel);
    }
    const std::int64_t t90 = t90_ns_.load(std::memory_order_acquire);
    if (t90 != 0 && end > t90) {
      const std::int64_t begin = std::max(ns_of(t0), t90);
      window_busy_ns_.fetch_add(static_cast<std::uint64_t>(end - begin),
                                std::memory_order_relaxed);
    }
    std::int64_t prev = last_end_ns_.load(std::memory_order_relaxed);
    while (prev < end && !last_end_ns_.compare_exchange_weak(
                             prev, end, std::memory_order_relaxed)) {
    }
  }

  /// Mean busy fraction of `workers` over [t90, last body end].
  [[nodiscard]] double window_utilization(std::uint32_t workers) const {
    const std::int64_t t90 = t90_ns_.load(std::memory_order_relaxed);
    const std::int64_t end = last_end_ns_.load(std::memory_order_relaxed);
    if (t90 == 0 || end <= t90) return 0.0;
    return static_cast<double>(window_busy_ns_.load(std::memory_order_relaxed)) /
           (static_cast<double>(workers) * static_cast<double>(end - t90));
  }

 private:
  static std::int64_t ns_of(std::chrono::steady_clock::time_point t) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               t.time_since_epoch())
        .count();
  }

  const std::uint64_t threshold_;
  std::atomic<std::uint64_t> done_{0};
  std::atomic<std::int64_t> t90_ns_{0};  // 0 = not crossed yet
  std::atomic<std::uint64_t> window_busy_ns_{0};
  std::atomic<std::int64_t> last_end_ns_{0};
};

/// Busy-spin of `iters` hash rounds; the global sink defeats the optimizer.
inline std::atomic<std::uint64_t> g_spin_sink{0};
inline void spin(std::uint32_t iters) {
  std::uint64_t acc = 0;
  for (std::uint32_t i = 0; i < iters; ++i)
    acc += (static_cast<std::uint64_t>(i) * 2654435761u) ^ (acc >> 7);
  g_spin_sink.fetch_add(acc, std::memory_order_relaxed);
}

/// Machine-readable bench output: pass `--json <path>` to any gate or
/// figure bench and it appends one record per reported metric, so the
/// BENCH_*.json perf trajectory can be recorded per PR. Without the flag,
/// add() is a no-op. Records are written by flush() (called by the
/// destructor) under a `meta` block stamping the run (build type, UTC
/// timestamp, hardware concurrency, plus whatever the bench set_meta()s —
/// workers, shards, ...), so two BENCH files are comparable after the fact.
class JsonReport {
 public:
  JsonReport() = default;

  /// Scan argv for `--json <path>`. Unknown arguments are ignored (the
  /// benches have no other flags).
  static JsonReport from_args(int argc, char** argv) {
    JsonReport r;
    for (int i = 0; i + 1 < argc; ++i)
      if (std::strcmp(argv[i], "--json") == 0) r.path_ = argv[i + 1];
    return r;
  }

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;
  JsonReport(JsonReport&&) = default;
  JsonReport& operator=(JsonReport&&) = default;

  [[nodiscard]] bool enabled() const { return !path_.empty(); }

  /// One metric record: bench name, metric id, value, and the config string
  /// that distinguishes sweep points (e.g. "workers=8 batch=16").
  void add(const std::string& name, const std::string& metric, double value,
           const std::string& config) {
    if (enabled()) recs_.push_back({name, metric, value, config});
  }

  /// Bench-specific run metadata (e.g. "workers", "shards"). Later calls
  /// with the same key append — keep keys unique.
  void set_meta(const std::string& key, const std::string& value) {
    if (enabled()) meta_.push_back({key, value});
  }
  void set_meta(const std::string& key, std::uint64_t value) {
    set_meta(key, std::to_string(value));
  }

  /// Write the records as a JSON array. Returns false (and warns on stderr)
  /// when the file cannot be written.
  bool flush() {
    if (!enabled() || flushed_) return true;
    flushed_ = true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write --json file '%s'\n", path_.c_str());
      return false;
    }
    std::fputs("{\n  \"meta\": {\n", f);
#ifdef NDEBUG
    std::fputs("    \"build_type\": \"release\",\n", f);
#else
    std::fputs("    \"build_type\": \"debug\",\n", f);
#endif
    std::fprintf(f, "    \"timestamp\": \"%s\",\n", utc_timestamp().c_str());
    std::fprintf(f, "    \"hardware_concurrency\": %u",
                 std::thread::hardware_concurrency());
    for (const auto& [k, v] : meta_)
      std::fprintf(f, ",\n    \"%s\": \"%s\"", escape(k).c_str(),
                   escape(v).c_str());
    std::fputs("\n  },\n  \"records\": [\n", f);
    for (std::size_t i = 0; i < recs_.size(); ++i) {
      const Rec& r = recs_[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"metric\": \"%s\", \"value\": %.17g, "
                   "\"config\": \"%s\"}%s\n",
                   escape(r.name).c_str(), escape(r.metric).c_str(), r.value,
                   escape(r.config).c_str(), i + 1 < recs_.size() ? "," : "");
    }
    std::fputs("  ]\n}\n", f);
    std::fclose(f);
    return true;
  }

  ~JsonReport() { flush(); }

 private:
  struct Rec {
    std::string name, metric;
    double value;
    std::string config;
  };

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) continue;  // control chars
      out.push_back(c);
    }
    return out;
  }

  static std::string utc_timestamp() {
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
  }

  std::string path_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<Rec> recs_;
  bool flushed_ = false;
};

/// A canonical two-phase (A then B) program with the requested enablement
/// mapping from A to B. For reverse/forward kinds, `fan` controls the number
/// of requirements per successor granule (the paper's J=1..10) / targets per
/// current granule.
struct TwoPhase {
  PhaseProgram program;
  PhaseId a = kNoPhase;
  PhaseId b = kNoPhase;
};

inline TwoPhase two_phase(GranuleId n_a, GranuleId n_b, MappingKind kind,
                          std::uint32_t fan = 4, bool stable = false,
                          bool serial_between = false,
                          bool serial_conflicts = true) {
  TwoPhase out;
  out.a = out.program.define_phase(make_phase("phaseA", n_a).writes("X"));
  out.b = out.program.define_phase(make_phase("phaseB", n_b).reads("X").writes("Y"));

  EnableClause clause;
  clause.successor_name = "phaseB";
  clause.kind = kind;
  if (kind == MappingKind::kReverseIndirect) {
    clause.indirection.requires_of = [n_a, fan](GranuleId r,
                                                std::vector<GranuleId>& need) {
      std::uint64_t s = 0x51ED2701u ^ (static_cast<std::uint64_t>(r) << 17);
      for (std::uint32_t j = 0; j < fan; ++j)
        need.push_back(static_cast<GranuleId>(splitmix64(s) % n_a));
    };
    clause.indirection.stable = stable;
  } else if (kind == MappingKind::kForwardIndirect) {
    clause.indirection.enables_of = [n_b, fan](GranuleId p,
                                               std::vector<GranuleId>& en) {
      std::uint64_t s = 0x2F0A1993u ^ (static_cast<std::uint64_t>(p) << 13);
      for (std::uint32_t j = 0; j < fan; ++j)
        en.push_back(static_cast<GranuleId>(splitmix64(s) % n_b));
    };
    clause.indirection.stable = stable;
  }

  out.program.dispatch(out.a, {clause});
  if (serial_between)
    out.program.serial("between", {}, /*sim_duration=*/200, serial_conflicts);
  out.program.dispatch(out.b);
  out.program.halt();
  return out;
}

// --- the T9 protocol workload ------------------------------------------------
// One definition shared by bench_t9_shard (which gates sharding against the
// 1-shard baseline on it) and bench_t10_alloc (which gates that the
// allocation-free control plane did not tax the same path) — so the two
// gates can never silently diverge on workload or knobs.

inline constexpr GranuleId kT9Granules = 4096;  ///< granules per phase
inline constexpr std::uint64_t kT9Total = 2ull * kT9Granules;
inline constexpr std::uint32_t kT9Grain = 32;
inline constexpr std::uint32_t kT9Batch = 16;

/// T10's warm-window heap-traffic bar, shared so bench_t12_lockfree gates
/// the lock-free engine against the SAME bar bench_t10_alloc set for the
/// mutex-era control plane: pre-rework baseline (PR 4 tree, exact T10a
/// workload) and the required reduction factor. Bar = baseline / reduction.
inline constexpr double kT10PreReworkAllocsPerGranule = 0.123;
inline constexpr double kT10RequiredReduction = 10.0;

/// One run of the T9 two-phase identity program with ramped granule cost
/// (~6x head to tail). When `probe` is non-null the bodies feed it for the
/// rundown-window utilization metric. When `trace` is non-null the run
/// records into it (the t11 overhead gate's tracing-on arm). `lockfree`
/// picks the shard warm-path engine (core/sharded_executive.hpp): the
/// default follows the shipped configuration; bench_t9_shard pins false on
/// BOTH of its arms so the t9 gate keeps isolating the sharding layer, and
/// bench_t12_lockfree runs one arm of each to gate the rings.
inline rt::RtResult run_t9_protocol(std::uint32_t workers, std::uint32_t shards,
                                    RundownProbe* probe = nullptr,
                                    obs::TraceBuffer* trace = nullptr,
                                    bool lockfree = true) {
  PhaseProgram prog;
  const PhaseId a = prog.define_phase(make_phase("a", kT9Granules).writes("A"));
  const PhaseId b =
      prog.define_phase(make_phase("b", kT9Granules).reads("A").writes("B"));
  prog.dispatch(a, {EnableClause{"b", MappingKind::kIdentity, {}}});
  prog.dispatch(b);
  prog.halt();

  rt::BodyTable bodies;
  auto body = [probe](GranuleRange r, WorkerId) {
    const auto t0 = std::chrono::steady_clock::now();
    for (GranuleId g = r.lo; g < r.hi; ++g)
      spin(1500 + static_cast<std::uint32_t>(g) * 2);  // cost ramps ~6x
    if (probe != nullptr)
      probe->on_body(t0, std::chrono::steady_clock::now(), r.size());
  };
  bodies.set(a, body);
  bodies.set(b, body);

  ExecConfig cfg;
  cfg.grain = kT9Grain;
  rt::RtConfig rc;
  rc.workers = workers;
  rc.batch = kT9Batch;
  rc.shards = shards;
  rc.lockfree = lockfree;
  rc.trace = trace;
  rt::ThreadedRuntime runtime(prog, cfg, CostModel::free_of_charge(), bodies, rc);
  return runtime.run();
}

/// Per-acquire cost probe (the take_from regression guard): mean ns of a
/// *warm* single-assignment acquire against a shard buffer pre-filled to
/// `depth`. Single-threaded and deterministic: one worker primes the rings
/// via a sweep, then drains its home shard one assignment at a time; only
/// non-swept acquires are timed. The old mutex engine's erase-from-front
/// made this O(buffer) — cost(depth=4096) ran away from cost(depth=64) —
/// while the ring pop is O(taken): bench_t12 asserts the ratio stays flat.
inline double warm_acquire_cost_ns(std::uint32_t depth,
                                   std::uint32_t warm_target = 8192) {
  PhaseProgram prog;
  const auto granules = static_cast<GranuleId>(depth) * 8;
  const PhaseId a = prog.define_phase(make_phase("a", granules).writes("A"));
  prog.dispatch(a);
  prog.halt();

  ExecConfig cfg;
  cfg.grain = 1;  // one granule per assignment: buffer occupancy == depth
  ShardConfig sc;
  sc.shards = 2;  // >1: engage the shard warm path, not the short-circuit
  sc.workers = 2;
  sc.batch = 1;
  sc.depth = depth;
  ShardedExecutive exec(prog, cfg, CostModel::free_of_charge(), sc);
  exec.start();

  std::vector<Ticket> done;  // stays empty: pure handout cost, no retires
  std::vector<Assignment> out;
  out.reserve(warm_target + depth);
  std::uint64_t warm_ns = 0;
  std::uint64_t warm_n = 0;
  while (warm_n < warm_target) {
    const auto t0 = std::chrono::steady_clock::now();
    const ShardAcquire res = exec.acquire(/*w=*/0, /*max_n=*/1, done, out);
    const auto t1 = std::chrono::steady_clock::now();
    if (res.taken == 0) break;  // program handed out completely
    if (!res.swept) {  // sweeps are the slow path; this probe times the warm one
      warm_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
      ++warm_n;
    }
  }
  if (warm_n == 0) return 0.0;
  return static_cast<double>(warm_ns) / static_cast<double>(warm_n);
}

/// Végh's effective parallelization (PAPERS.md: "the case of the parallelized
/// sequential processing"): invert Amdahl's law around a measured speedup S
/// on k workers to get the single-number figure of merit
///     alpha_eff = (k / (k - 1)) * (1 - 1 / S),
/// the parallel fraction an ideal Amdahl machine would need to show this S.
/// alpha_eff -> 1 means the harness (here: the pool's serving plane) adds no
/// effective serial fraction; the gap 1 - alpha_eff is the scheduling tax.
/// Degenerate inputs (k <= 1, S <= 0) return 0.
[[nodiscard]] inline double vegh_alpha_eff(double speedup, std::uint32_t workers) {
  if (workers <= 1 || speedup <= 0.0) return 0.0;
  const double k = static_cast<double>(workers);
  return (k / (k - 1.0)) * (1.0 - 1.0 / speedup);
}

/// Rundown window of phase-1 under a given result: [first idle-onset
/// candidate, phase completion]. We approximate the onset as `window_frac`
/// of the phase's span before its completion.
inline double rundown_utilization(const sim::SimResult& res, PhaseId phase,
                                  double window_frac = 0.15) {
  const SimTime done = res.phase_completion(phase);
  if (done == kTimeNever || done == 0) return 0.0;
  const auto span = static_cast<SimTime>(static_cast<double>(done) * window_frac);
  const SimTime from = done > span ? done - span : 0;
  if (done <= from) return 0.0;
  return res.window_utilization(from, done);
}

inline std::string fixed(double v, int prec = 2) { return Table::num(v, prec); }

inline void print_banner(const char* id, const char* claim) {
  std::printf("\n############################################################\n");
  std::printf("# %s\n# paper: %s\n", id, claim);
  std::printf("############################################################\n\n");
}

}  // namespace pax::bench
