// bench_util.hpp — shared builders for the experiment harness.
//
// Each bench binary regenerates one quantitative claim of the paper (see
// DESIGN.md §4 and the README bench matrix). The helpers here build canonical
// two-phase programs for every mapping kind and run them on the simulator.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/executive.hpp"
#include "sim/machine.hpp"

namespace pax::bench {

/// A canonical two-phase (A then B) program with the requested enablement
/// mapping from A to B. For reverse/forward kinds, `fan` controls the number
/// of requirements per successor granule (the paper's J=1..10) / targets per
/// current granule.
struct TwoPhase {
  PhaseProgram program;
  PhaseId a = kNoPhase;
  PhaseId b = kNoPhase;
};

inline TwoPhase two_phase(GranuleId n_a, GranuleId n_b, MappingKind kind,
                          std::uint32_t fan = 4, bool stable = false,
                          bool serial_between = false,
                          bool serial_conflicts = true) {
  TwoPhase out;
  out.a = out.program.define_phase(make_phase("phaseA", n_a).writes("X"));
  out.b = out.program.define_phase(make_phase("phaseB", n_b).reads("X").writes("Y"));

  EnableClause clause;
  clause.successor_name = "phaseB";
  clause.kind = kind;
  if (kind == MappingKind::kReverseIndirect) {
    clause.indirection.requires_of = [n_a, fan](GranuleId r) {
      std::vector<GranuleId> need;
      need.reserve(fan);
      std::uint64_t s = 0x51ED2701u ^ (static_cast<std::uint64_t>(r) << 17);
      for (std::uint32_t j = 0; j < fan; ++j)
        need.push_back(static_cast<GranuleId>(splitmix64(s) % n_a));
      return need;
    };
    clause.indirection.stable = stable;
  } else if (kind == MappingKind::kForwardIndirect) {
    clause.indirection.enables_of = [n_b, fan](GranuleId p) {
      std::vector<GranuleId> en;
      en.reserve(fan);
      std::uint64_t s = 0x2F0A1993u ^ (static_cast<std::uint64_t>(p) << 13);
      for (std::uint32_t j = 0; j < fan; ++j)
        en.push_back(static_cast<GranuleId>(splitmix64(s) % n_b));
      return en;
    };
    clause.indirection.stable = stable;
  }

  out.program.dispatch(out.a, {clause});
  if (serial_between)
    out.program.serial("between", {}, /*sim_duration=*/200, serial_conflicts);
  out.program.dispatch(out.b);
  out.program.halt();
  return out;
}

/// Rundown window of phase-1 under a given result: [first idle-onset
/// candidate, phase completion]. We approximate the onset as `window_frac`
/// of the phase's span before its completion.
inline double rundown_utilization(const sim::SimResult& res, PhaseId phase,
                                  double window_frac = 0.15) {
  const SimTime done = res.phase_completion(phase);
  if (done == kTimeNever || done == 0) return 0.0;
  const auto span = static_cast<SimTime>(static_cast<double>(done) * window_frac);
  const SimTime from = done > span ? done - span : 0;
  if (done <= from) return 0.0;
  return res.window_utilization(from, done);
}

inline std::string fixed(double v, int prec = 2) { return Table::num(v, prec); }

inline void print_banner(const char* id, const char* claim) {
  std::printf("\n############################################################\n");
  std::printf("# %s\n# paper: %s\n", id, claim);
  std::printf("############################################################\n\n");
}

}  // namespace pax::bench
